package esi

import (
	"testing"

	"repro/internal/linalg"
)

// These tests drive every generated binding through its full SIDL stub
// (stub → EPV → skeleton → implementation), verifying that the proxy
// generator's output forwards arguments, inout pointers, and results
// faithfully for each interface in the corpus.

type fakeSolver struct {
	tol     float64
	maxIter int32
	solved  bool
}

func (f *fakeSolver) TypeName() string         { return "fake.Solver" }
func (f *fakeSolver) SetTolerance(tol float64) { f.tol = tol }
func (f *fakeSolver) SetMaxIterations(n int32) { f.maxIter = n }
func (f *fakeSolver) FinalResidual() float64   { return 1e-12 }
func (f *fakeSolver) Converged() bool          { return f.solved }
func (f *fakeSolver) Solve(b []float64, x *[]float64) (int32, error) {
	*x = append([]float64(nil), b...) // "solve" by copying
	f.solved = true
	return int32(len(b)), nil
}

func TestSolverStubForwardsEverything(t *testing.T) {
	impl := &fakeSolver{}
	stub := NewEsiSolverStub(impl)
	if stub.TypeName() != "fake.Solver" {
		t.Errorf("typeName = %q", stub.TypeName())
	}
	stub.SetTolerance(1e-4)
	stub.SetMaxIterations(77)
	if impl.tol != 1e-4 || impl.maxIter != 77 {
		t.Errorf("setters not forwarded: %+v", impl)
	}
	var x []float64
	iters, err := stub.Solve([]float64{1, 2, 3}, &x)
	if err != nil || iters != 3 {
		t.Fatalf("solve = %d, %v", iters, err)
	}
	if len(x) != 3 || x[2] != 3 {
		t.Errorf("x = %v", x)
	}
	if !stub.Converged() || stub.FinalResidual() != 1e-12 {
		t.Errorf("converged=%v res=%v", stub.Converged(), stub.FinalResidual())
	}
}

func TestObjectStub(t *testing.T) {
	stub := NewEsiObjectStub(&fakeSolver{})
	if stub.TypeName() != "fake.Solver" {
		t.Errorf("typeName = %q", stub.TypeName())
	}
}

func TestPreconditionerStub(t *testing.T) {
	m := linalg.Poisson2D(4, 4)
	f := NewOperatorComponent(m)
	// Wire a real jacobi preconditioner through its stub.
	fw := newTestFramework(t)
	if err := fw.Install("op", f); err != nil {
		t.Fatal(err)
	}
	prec := NewPreconditionerComponent("jacobi")
	if err := fw.Install("prec", prec); err != nil {
		t.Fatal(err)
	}
	if _, err := fw.Connect("prec", "A", "op", "A"); err != nil {
		t.Fatal(err)
	}
	stub := NewEsiPreconditionerStub(prec)
	if stub.TypeName() != "esi.PreconditionerComponent/jacobi" {
		t.Errorf("typeName = %q", stub.TypeName())
	}
	r := linalg.Ones(m.NRows)
	var z []float64
	if err := stub.Precondition(r, &z); err != nil {
		t.Fatal(err)
	}
	if len(z) != m.NRows || z[0] != 0.25 { // diag of Poisson2D is 4
		t.Errorf("z[0] = %v", z[0])
	}
}

type fakeGo struct{ calls int }

func (f *fakeGo) Go() int32 {
	f.calls++
	return 0
}

func TestGoPortStub(t *testing.T) {
	impl := &fakeGo{}
	stub := NewCcaGoPortStub(impl)
	if stub.Go() != 0 || impl.calls != 1 {
		t.Errorf("go stub: calls=%d", impl.calls)
	}
}

type fakeDistArray struct {
	n     int32
	ranks []int32
	data  []float64
}

func (f *fakeDistArray) GlobalLength() int32 { return f.n }
func (f *fakeDistArray) Describe(worldRanks *[]int32) {
	*worldRanks = append([]int32(nil), f.ranks...)
}
func (f *fakeDistArray) LocalData(chunk *[]float64) {
	*chunk = append([]float64(nil), f.data...)
}

func TestDistArrayStub(t *testing.T) {
	impl := &fakeDistArray{n: 10, ranks: []int32{0, 1}, data: []float64{1, 2}}
	stub := NewCcaPortsDistArrayStub(impl)
	if stub.GlobalLength() != 10 {
		t.Errorf("globalLength = %d", stub.GlobalLength())
	}
	var ranks []int32
	stub.Describe(&ranks)
	if len(ranks) != 2 || ranks[1] != 1 {
		t.Errorf("ranks = %v", ranks)
	}
	var chunk []float64
	stub.LocalData(&chunk)
	if len(chunk) != 2 || chunk[0] != 1 {
		t.Errorf("chunk = %v", chunk)
	}
}

type fakeMonitor struct {
	steps []int32
}

func (f *fakeMonitor) Observe(step int32, data []float64) {
	f.steps = append(f.steps, step)
}

func TestMonitorStub(t *testing.T) {
	impl := &fakeMonitor{}
	stub := NewCcaPortsMonitorStub(impl)
	stub.Observe(7, []float64{1})
	stub.Observe(8, nil)
	if len(impl.steps) != 2 || impl.steps[1] != 8 {
		t.Errorf("steps = %v", impl.steps)
	}
}

func TestMatrixDataStubIORReuse(t *testing.T) {
	// The IOR can be shared across stubs (separate caller bindings over
	// one implementation).
	op := NewOperatorComponent(linalg.Laplace1D(3))
	ior := NewEsiMatrixDataIOR(op)
	s1 := EsiMatrixDataStub{IOR: ior}
	s2 := EsiMatrixDataStub{IOR: ior}
	if s1.Rows() != 3 || s2.Nonzeros() != s1.Nonzeros() {
		t.Error("stubs over shared IOR disagree")
	}
}

func TestMonitorFanOutType(t *testing.T) {
	// The generated fan-out type implements the paper's listener-list
	// semantics: one call, N invocations.
	m1, m2 := &fakeMonitor{}, &fakeMonitor{}
	fan := CcaPortsMonitorFanOut{m1, m2}
	fan.Observe(3, []float64{1, 2})
	if len(m1.steps) != 1 || len(m2.steps) != 1 || m2.steps[0] != 3 {
		t.Errorf("fan-out: m1=%v m2=%v", m1.steps, m2.steps)
	}
	// Empty fan-out: zero invocations, no panic.
	CcaPortsMonitorFanOut{}.Observe(4, nil)
}
