package esi

import (
	"bytes"
	"errors"
	"math"
	"testing"

	"repro/internal/cca/framework"
	"repro/internal/linalg"
)

// wireIterative assembles operator --A--> step-wise solver.
func wireIterative(t *testing.T, m *linalg.CSR) (*framework.Framework, *IterativeSolverComponent) {
	t.Helper()
	f := framework.New(framework.Options{TypeCheck: TypeChecker()})
	if err := f.Install("op", NewOperatorComponent(m)); err != nil {
		t.Fatal(err)
	}
	if err := f.Install("itersolver", NewIterativeSolverComponent()); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Connect("itersolver", "A", "op", "A"); err != nil {
		t.Fatal(err)
	}
	comp, _ := f.Component("itersolver")
	return f, comp.(*IterativeSolverComponent)
}

// stepToConvergence drives Step in small batches until done.
func stepToConvergence(t *testing.T, s *IterativeSolverComponent) {
	t.Helper()
	for i := 0; i < 10000; i++ {
		_, _, done, err := s.Step(3)
		if err != nil {
			t.Fatalf("step: %v", err)
		}
		if done {
			return
		}
	}
	t.Fatal("step loop never converged")
}

func TestIterativeStepMatchesBatchSolve(t *testing.T) {
	m := linalg.Poisson2D(16, 16)
	b := manufactured(t, m)

	// Batch solve through the one-shot CG component.
	_, batch := wireSolver(t, "cg", "", m)
	batch.SetTolerance(1e-10)
	xb := make([]float64, m.NRows)
	batchIters, err := batch.Solve(b, &xb)
	if err != nil {
		t.Fatal(err)
	}

	// Step-wise solve of the same system.
	_, iter := wireIterative(t, m)
	iter.SetTolerance(1e-10)
	if err := iter.Begin(b); err != nil {
		t.Fatal(err)
	}
	stepToConvergence(t, iter)
	xi := iter.Solution()

	if !iter.Converged() {
		t.Fatal("step-wise solver not converged")
	}
	if iter.Residual() > 1e-10 {
		t.Errorf("residual = %v", iter.Residual())
	}
	if it := iter.Iterations(); it == 0 || int32(it) > 2*batchIters+2 {
		t.Errorf("iterations = %d, batch took %d", it, batchIters)
	}
	for i := range xi {
		if math.Abs(xi[i]-1) > 1e-6 {
			t.Fatalf("x[%d] = %v, want 1", i, xi[i])
		}
		if math.Abs(xi[i]-xb[i]) > 1e-8 {
			t.Fatalf("step x[%d]=%v diverges from batch %v", i, xi[i], xb[i])
		}
	}
}

func TestIterativeCheckpointResumesIdentically(t *testing.T) {
	m := linalg.Poisson2D(12, 12)
	b := manufactured(t, m)

	// Reference: run uninterrupted to convergence.
	_, ref := wireIterative(t, m)
	ref.SetTolerance(1e-10)
	if err := ref.Begin(b); err != nil {
		t.Fatal(err)
	}
	stepToConvergence(t, ref)

	// Interrupted: step a few iterations, checkpoint, restore into a FRESH
	// component, and finish there. The CG recurrence is deterministic, so
	// the restored run must land on bit-identical iterates.
	_, first := wireIterative(t, m)
	first.SetTolerance(1e-10)
	if err := first.Begin(b); err != nil {
		t.Fatal(err)
	}
	if _, _, done, err := first.Step(5); err != nil || done {
		t.Fatalf("early steps: done=%v err=%v", done, err)
	}
	var buf bytes.Buffer
	if err := first.Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}

	_, second := wireIterative(t, m)
	if err := second.Restore(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	if second.Iterations() != 5 {
		t.Fatalf("restored iteration count = %d, want 5", second.Iterations())
	}
	stepToConvergence(t, second)

	want, got := ref.Solution(), second.Solution()
	if ref.Iterations() != second.Iterations() {
		t.Errorf("iterations: uninterrupted %d, resumed %d", ref.Iterations(), second.Iterations())
	}
	for i := range want {
		if math.Float64bits(want[i]) != math.Float64bits(got[i]) {
			t.Fatalf("x[%d]: resumed %v != uninterrupted %v (not bit-identical)", i, got[i], want[i])
		}
	}
}

func TestIterativeStepBeforeBegin(t *testing.T) {
	m := linalg.Poisson2D(4, 4)
	_, s := wireIterative(t, m)
	_, _, _, err := s.Step(1)
	var se *SolveError
	if !errors.As(err, &se) {
		t.Fatalf("err = %v, want SolveError", err)
	}
}

func TestIterativeBeginRejectsWrongLength(t *testing.T) {
	m := linalg.Poisson2D(4, 4)
	_, s := wireIterative(t, m)
	var se *SolveError
	if err := s.Begin([]float64{1, 2, 3}); !errors.As(err, &se) {
		t.Fatalf("err = %v, want SolveError", err)
	}
}

func TestIterativeUnstartedCheckpointRoundTrips(t *testing.T) {
	m := linalg.Poisson2D(4, 4)
	_, s := wireIterative(t, m)
	var buf bytes.Buffer
	if err := s.Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}
	_, fresh := wireIterative(t, m)
	if err := fresh.Restore(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	// Still unstarted: stepping must fail exactly as before.
	if _, _, _, err := fresh.Step(1); err == nil {
		t.Fatal("step after empty restore succeeded")
	}
}

func TestIterativeBeginResetsAfterRestore(t *testing.T) {
	// A restored solver can be re-begun on a new RHS; state is rebuilt.
	m := linalg.Poisson2D(8, 8)
	b := manufactured(t, m)
	_, s := wireIterative(t, m)
	s.SetTolerance(1e-10)
	if err := s.Begin(b); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := s.Step(3); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := s.Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}
	if err := s.Restore(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	if err := s.Begin(b); err != nil {
		t.Fatal(err)
	}
	if s.Iterations() != 0 {
		t.Errorf("iterations after re-begin = %d", s.Iterations())
	}
	stepToConvergence(t, s)
	for i, v := range s.Solution() {
		if math.Abs(v-1) > 1e-6 {
			t.Fatalf("x[%d] = %v", i, v)
		}
	}
}
