package esi

import (
	_ "embed"
	"fmt"
	"sync"

	"repro/internal/cca"
	"repro/internal/sidl"
)

//go:embed esi.sidl
var esiSIDL string

//go:embed ports.sidl
var portsSIDL string

// Sources returns the package's SIDL definition sources, for depositing
// into repositories.
func Sources() (esiSrc, portsSrc string) { return esiSIDL, portsSIDL }

var (
	tableOnce sync.Once
	tableVal  *sidl.Table
	tableErr  error
)

// Table returns the resolved SIDL symbol table of the embedded definitions.
func Table() (*sidl.Table, error) {
	tableOnce.Do(func() {
		var files []*sidl.File
		for _, src := range []string{esiSIDL, portsSIDL} {
			f, err := sidl.Parse(src)
			if err != nil {
				tableErr = err
				return
			}
			files = append(files, f)
		}
		tableVal, tableErr = sidl.Resolve(files...)
	})
	return tableVal, tableErr
}

// TypeChecker returns a framework port-type checker implementing the
// paper's §4 compatibility rule ("object-oriented type compatibility of the
// port interfaces, as can be described in the SIDL") over the embedded ESI
// definitions: a provides port connects to a uses port when its type is a
// SIDL subtype of the uses type. Unknown types fall back to exact matching.
func TypeChecker() func(usesType, providesType string) error {
	return func(usesType, providesType string) error {
		if usesType == "" || providesType == "" || usesType == providesType {
			return nil
		}
		tbl, err := Table()
		if err == nil && tbl.Lookup(usesType) != "" && tbl.Lookup(providesType) != "" {
			if tbl.IsSubtype(providesType, usesType) {
				return nil
			}
		}
		return fmt.Errorf("%w: provides %q is not usable as %q", cca.ErrTypeMismatch, providesType, usesType)
	}
}
