package esi

import (
	"errors"
	"math"
	"os"
	"strings"
	"testing"

	"repro/internal/cca"
	"repro/internal/cca/framework"
	"repro/internal/linalg"
	"repro/internal/sidl"
	"repro/internal/sidl/codegen"
	"repro/internal/sidl/sreflect"
)

// TestBindingsAreCurrent regenerates the Go bindings from the checked-in
// SIDL sources and verifies bindings_gen.go matches — the golden test tying
// the committed code to the compiler.
func TestBindingsAreCurrent(t *testing.T) {
	var files []*sidl.File
	for _, path := range []string{"esi.sidl", "ports.sidl"} {
		src, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		f, err := sidl.Parse(string(src))
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		files = append(files, f)
	}
	tbl, err := sidl.Resolve(files...)
	if err != nil {
		t.Fatal(err)
	}
	want, err := codegen.Generate(tbl, codegen.Options{PackageName: "esi", Reflection: true})
	if err != nil {
		t.Fatal(err)
	}
	gotRaw, err := os.ReadFile("bindings_gen.go")
	if err != nil {
		t.Fatal(err)
	}
	// The checked-in file is gofmt-ed; compare modulo whitespace lines.
	norm := func(s string) string {
		var b strings.Builder
		for _, line := range strings.Split(s, "\n") {
			b.WriteString(strings.Join(strings.Fields(line), " "))
			b.WriteString("\n")
		}
		return b.String()
	}
	if norm(string(gotRaw)) != norm(want) {
		t.Error("bindings_gen.go is stale; regenerate with:\n  go run ./cmd/sidlc -gen -pkg esi -reflection -o internal/esi/bindings_gen.go internal/esi/esi.sidl internal/esi/ports.sidl && gofmt -w internal/esi/bindings_gen.go")
	}
}

// TestReflectionRegistered verifies the generated init() populated the
// global reflection registry.
func TestReflectionRegistered(t *testing.T) {
	info, ok := sreflect.Global.Lookup("esi.Solver")
	if !ok {
		t.Fatal("esi.Solver not in global registry")
	}
	if _, ok := info.Method("solve"); !ok {
		t.Error("solve method missing from reflection data")
	}
	if !sreflect.Global.IsSubtype("esi.MatrixData", "esi.Object") {
		t.Error("subtype chain missing in registry")
	}
}

// wireSolver builds the canonical three-component assembly:
// operator --A--> solver, operator --A--> preconditioner --M--> solver.
func wireSolver(t *testing.T, method, precKind string, m *linalg.CSR) (*framework.Framework, EsiSolver) {
	t.Helper()
	f := framework.New(framework.Options{TypeCheck: TypeChecker()})
	if err := f.Install("op", NewOperatorComponent(m)); err != nil {
		t.Fatal(err)
	}
	if err := f.Install("solver", NewSolverComponent(method)); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Connect("solver", "A", "op", "A"); err != nil {
		t.Fatal(err)
	}
	if precKind != "" {
		if err := f.Install("prec", NewPreconditionerComponent(precKind)); err != nil {
			t.Fatal(err)
		}
		if _, err := f.Connect("prec", "A", "op", "A"); err != nil {
			t.Fatal(err)
		}
		if _, err := f.Connect("solver", "M", "prec", "M"); err != nil {
			t.Fatal(err)
		}
	}
	comp, _ := f.Component("solver")
	return f, comp.(EsiSolver)
}

func manufactured(t *testing.T, m *linalg.CSR) []float64 {
	t.Helper()
	b := make([]float64, m.NRows)
	if err := m.Apply(linalg.Ones(m.NCols), b); err != nil {
		t.Fatal(err)
	}
	return b
}

func TestSolveThroughPorts(t *testing.T) {
	m := linalg.Poisson2D(16, 16)
	b := manufactured(t, m)
	_, solver := wireSolver(t, "cg", "", m)
	solver.SetTolerance(1e-10)
	x := make([]float64, m.NRows)
	iters, err := solver.Solve(b, &x)
	if err != nil {
		t.Fatalf("solve: %v", err)
	}
	if iters == 0 || !solver.Converged() {
		t.Fatalf("iters=%d converged=%v", iters, solver.Converged())
	}
	for i, v := range x {
		if math.Abs(v-1) > 1e-6 {
			t.Fatalf("x[%d] = %v", i, v)
		}
	}
	if solver.FinalResidual() > 1e-10 {
		t.Errorf("residual = %v", solver.FinalResidual())
	}
}

func TestSolverSwapWithoutRewiring(t *testing.T) {
	// The §2.2 experiment: same operator, three methods, identical wiring.
	m := linalg.AdvDiff2D(12, 12, 6, 3)
	b := manufactured(t, m)
	for _, method := range []string{"gmres", "bicgstab"} {
		_, solver := wireSolver(t, method, "", m)
		solver.SetTolerance(1e-9)
		x := make([]float64, m.NRows)
		if _, err := solver.Solve(b, &x); err != nil {
			t.Fatalf("%s: %v", method, err)
		}
		for i, v := range x {
			if math.Abs(v-1) > 1e-5 {
				t.Fatalf("%s: x[%d] = %v", method, i, v)
			}
		}
	}
}

func TestPreconditionersThroughPorts(t *testing.T) {
	m := linalg.Poisson2D(24, 24)
	b := manufactured(t, m)
	iterCounts := map[string]int32{}
	for _, kind := range []string{"", "jacobi", "ilu0", "sor"} {
		_, solver := wireSolver(t, "cg", kind, m)
		solver.SetTolerance(1e-10)
		x := make([]float64, m.NRows)
		iters, err := solver.Solve(b, &x)
		if err != nil {
			t.Fatalf("prec %q: %v", kind, err)
		}
		iterCounts[kind] = iters
	}
	if iterCounts["ilu0"] >= iterCounts[""] {
		t.Errorf("ilu0 (%d iters) no better than none (%d)", iterCounts["ilu0"], iterCounts[""])
	}
}

func TestSolverWithoutOperatorFails(t *testing.T) {
	f := framework.New(framework.Options{})
	if err := f.Install("solver", NewSolverComponent("cg")); err != nil {
		t.Fatal(err)
	}
	comp, _ := f.Component("solver")
	solver := comp.(EsiSolver)
	x := make([]float64, 4)
	_, err := solver.Solve([]float64{1, 2, 3, 4}, &x)
	var se *SolveError
	if !errors.As(err, &se) {
		t.Fatalf("err = %v, want SolveError", err)
	}
	if !strings.Contains(se.Message(), "no operator") {
		t.Errorf("message = %q", se.Message())
	}
}

func TestNonConvergenceSurfacesAsSolveError(t *testing.T) {
	m := linalg.Poisson2D(16, 16)
	b := manufactured(t, m)
	_, solver := wireSolver(t, "cg", "", m)
	solver.SetTolerance(1e-14)
	solver.SetMaxIterations(2)
	x := make([]float64, m.NRows)
	_, err := solver.Solve(b, &x)
	var se *SolveError
	if !errors.As(err, &se) || !strings.Contains(se.Message(), "did not converge") {
		t.Fatalf("err = %v", err)
	}
	if solver.Converged() {
		t.Error("Converged() true after failure")
	}
}

func TestOperatorComponentDirectAndStub(t *testing.T) {
	// The same implementation must work directly and through the
	// generated SIDL stub (the 2-3-call binding of §6.2).
	m := linalg.Laplace1D(8)
	op := NewOperatorComponent(m)
	stub := NewEsiMatrixDataStub(op)
	if stub.Rows() != 8 || stub.Nonzeros() != int32(m.NNZ()) {
		t.Errorf("stub reports %d rows, %d nnz", stub.Rows(), stub.Nonzeros())
	}
	x := linalg.Ones(8)
	var yDirect, yStub []float64
	if err := op.Apply(x, &yDirect); err != nil {
		t.Fatal(err)
	}
	if err := stub.Apply(x, &yStub); err != nil {
		t.Fatal(err)
	}
	for i := range yDirect {
		if yDirect[i] != yStub[i] {
			t.Fatalf("stub and direct disagree at %d", i)
		}
	}
	var d []float64
	if err := stub.Diagonal(&d); err != nil || len(d) != 8 || d[0] != 2 {
		t.Errorf("diagonal via stub: %v %v", d, err)
	}
	if stub.TypeName() != "esi.OperatorComponent" {
		t.Errorf("typeName via stub = %q", stub.TypeName())
	}
}

func TestPreconditionerNeedsDirectForILU(t *testing.T) {
	// When the A connection is proxied (not direct), the CSR escape hatch
	// disappears and ILU0 must fail gracefully while Jacobi still works.
	m := linalg.Poisson2D(8, 8)
	proxied := framework.Options{
		TypeCheck: TypeChecker(),
		Proxy: func(p cca.Port, info cca.PortInfo) cca.Port {
			if md, ok := p.(EsiMatrixData); ok {
				return NewEsiMatrixDataStub(md) // stub hides CSRSource
			}
			return p
		},
	}
	f := framework.New(proxied)
	if err := f.Install("op", NewOperatorComponent(m)); err != nil {
		t.Fatal(err)
	}
	for kind, wantOK := range map[string]bool{"jacobi": true, "ilu0": false} {
		name := "prec-" + kind
		if err := f.Install(name, NewPreconditionerComponent(kind)); err != nil {
			t.Fatal(err)
		}
		if _, err := f.Connect(name, "A", "op", "A"); err != nil {
			t.Fatal(err)
		}
		comp, _ := f.Component(name)
		pc := comp.(EsiPreconditioner)
		r := linalg.Ones(m.NRows)
		var z []float64
		err := pc.Precondition(r, &z)
		if wantOK && err != nil {
			t.Errorf("%s through proxy: %v", kind, err)
		}
		if !wantOK && err == nil {
			t.Errorf("%s through proxy unexpectedly succeeded", kind)
		}
	}
}

func TestEnumBinding(t *testing.T) {
	if EsiReasonConverged != 0 || EsiReasonBreakdown != 10 {
		t.Errorf("enum values: %d %d", EsiReasonConverged, EsiReasonBreakdown)
	}
	if EsiReasonBreakdown.String() != "Breakdown" {
		t.Errorf("String = %q", EsiReasonBreakdown.String())
	}
	if EsiReason(99).String() != "esi.Reason(?)" {
		t.Errorf("unknown = %q", EsiReason(99).String())
	}
}

func TestDynamicInvocationOfComponent(t *testing.T) {
	// §5's DMI path against a live component.
	m := linalg.Laplace1D(4)
	op := NewOperatorComponent(m)
	info, ok := sreflect.Global.Lookup("esi.MatrixData")
	if !ok {
		t.Fatal("esi.MatrixData not registered")
	}
	obj, err := sreflect.NewObject(info, op)
	if err != nil {
		t.Fatal(err)
	}
	res, err := obj.Call("rows")
	if err != nil || res[0].(int32) != 4 {
		t.Fatalf("rows = %v, %v", res, err)
	}
	res, err = obj.Call("nonzeros")
	if err != nil || res[0].(int32) != int32(m.NNZ()) {
		t.Fatalf("nonzeros = %v, %v", res, err)
	}
}

// newTestFramework builds a framework with the ESI subtype checker, shared
// by the stub tests.
func newTestFramework(t *testing.T) *framework.Framework {
	t.Helper()
	return framework.New(framework.Options{TypeCheck: TypeChecker()})
}
