package esi

// IterativeSolverComponent is the step-wise, checkpointable counterpart of
// SolverComponent: instead of running a whole Krylov solve inside one port
// call, it exposes the iteration loop — Begin, Step(k), Solution — so a
// supervisor can checkpoint the solver between iterations and a crash
// mid-solve costs only the iterations since the last checkpoint, not the
// run. It implements cca.Checkpointable over the internal/ckpt wire
// format; distributed deployments replay the same bytes through the orb
// RestartPolicy's reserved restore key.

import (
	"fmt"
	"io"
	"math"
	"sync"

	"repro/internal/cca"
	"repro/internal/ckpt"
	"repro/internal/linalg"
)

// TypeIterativeSolver is the provides-port type of the step-wise solver.
const TypeIterativeSolver = "esi.IterativeSolver"

// ckptSections: the checkpoint stream layout written by Checkpoint.
// "meta" packs the counters; the five vectors carry the full mid-Krylov
// CG state — everything Step needs to continue exactly where the
// checkpointed instance stopped.
const (
	ckSecIt    = "it"
	ckSecRZ    = "rz"
	ckSecTol   = "tol"
	ckSecBNorm = "bnorm"
	ckSecB     = "b"
	ckSecX     = "x"
	ckSecR     = "r"
	ckSecZ     = "z"
	ckSecP     = "p"
	ckSecDone  = "done"
)

// IterativeSolverComponent provides an "esi.IterativeSolver" port named
// "solver" and uses an "A" operator port. Plain (unpreconditioned) CG:
// the per-iteration recurrence matches linalg.CG with the identity
// preconditioner, so an uninterrupted Step loop and a single
// linalg.CG.Solve produce the same iterates.
type IterativeSolverComponent struct {
	svc cca.Services

	mu      sync.Mutex
	tol     float64
	maxIter int

	started bool
	done    bool
	n       int
	it      int
	resid   float64
	rz      float64
	bnorm   float64
	b, x    []float64
	r, z, p []float64
	ap      []float64
}

var (
	_ cca.Component      = (*IterativeSolverComponent)(nil)
	_ cca.Checkpointable = (*IterativeSolverComponent)(nil)
)

// NewIterativeSolverComponent creates a step-wise CG solver.
func NewIterativeSolverComponent() *IterativeSolverComponent {
	return &IterativeSolverComponent{tol: 1e-8, maxIter: 10000}
}

// SetServices implements cca.Component.
func (s *IterativeSolverComponent) SetServices(svc cca.Services) error {
	s.svc = svc
	if err := svc.RegisterUsesPort(cca.PortInfo{Name: "A", Type: TypeOperator}); err != nil {
		return err
	}
	return svc.AddProvidesPort(s, cca.PortInfo{Name: "solver", Type: TypeIterativeSolver})
}

// TypeName implements EsiObject.
func (s *IterativeSolverComponent) TypeName() string { return "esi.IterativeSolverComponent/cg" }

// SetTolerance sets the relative-residual convergence threshold.
func (s *IterativeSolverComponent) SetTolerance(tol float64) {
	s.mu.Lock()
	s.tol = tol
	s.mu.Unlock()
}

// operator fetches the connected A port through the framework.
func (s *IterativeSolverComponent) operator() (EsiOperator, func(), error) {
	aport, err := s.svc.GetPort("A")
	if err != nil {
		return nil, nil, solveErrf("iterative solver has no operator: %v", err)
	}
	op, ok := aport.(EsiOperator)
	if !ok {
		s.svc.ReleasePort("A")
		return nil, nil, solveErrf("A port is %T, not esi.Operator", aport)
	}
	return op, func() { s.svc.ReleasePort("A") }, nil
}

// Begin initializes the CG recurrence for A x = b from x₀ = 0.
func (s *IterativeSolverComponent) Begin(b []float64) error {
	op, release, err := s.operator()
	if err != nil {
		return err
	}
	defer release()
	n := int(op.Rows())
	if len(b) != n {
		return solveErrf("begin: rhs has %d entries, operator has %d rows", len(b), n)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.started, s.done = true, false
	s.n, s.it = n, 0
	s.b = append([]float64(nil), b...)
	s.x = make([]float64, n)
	s.r = append([]float64(nil), b...) // r₀ = b - A·0 = b
	s.z = append([]float64(nil), b...) // identity preconditioner: z = r
	s.p = append([]float64(nil), b...)
	s.ap = make([]float64, n)
	s.rz = linalg.DotSerial(s.r, s.z)
	s.bnorm = linalg.Norm2(linalg.DotSerial, b)
	if s.bnorm == 0 {
		s.bnorm = 1
	}
	s.resid = linalg.Norm2(linalg.DotSerial, s.r) / s.bnorm
	return nil
}

// Step advances the recurrence by at most k iterations, stopping early on
// convergence. It returns the total iteration count so far, the current
// relative residual, and whether the solve has converged.
func (s *IterativeSolverComponent) Step(k int) (it int, resid float64, done bool, err error) {
	op, release, err := s.operator()
	if err != nil {
		return 0, 0, false, err
	}
	defer release()
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.started {
		return 0, 0, false, solveErrf("step before begin")
	}
	for stepped := 0; stepped < k; stepped++ {
		if s.done || s.it >= s.maxIter {
			break
		}
		if s.resid <= s.tol {
			s.done = true
			break
		}
		out := s.ap
		if err := op.Apply(s.p, &out); err != nil {
			return s.it, s.resid, s.done, err
		}
		if len(out) == len(s.ap) && (len(out) == 0 || &out[0] == &s.ap[0]) {
			// in place, nothing to do
		} else if len(out) == len(s.ap) {
			copy(s.ap, out)
		} else {
			return s.it, s.resid, s.done, solveErrf("apply changed vector length %d -> %d", len(s.ap), len(out))
		}
		pap := linalg.DotSerial(s.p, s.ap)
		if pap == 0 || math.IsNaN(pap) {
			return s.it, s.resid, s.done, solveErrf("cg breakdown: pᵀAp=%v at iter %d", pap, s.it)
		}
		alpha := s.rz / pap
		linalg.Axpy(alpha, s.p, s.x)
		linalg.Axpy(-alpha, s.ap, s.r)
		copy(s.z, s.r) // identity preconditioner
		rzNew := linalg.DotSerial(s.r, s.z)
		beta := rzNew / s.rz
		s.rz = rzNew
		for i := range s.p {
			s.p[i] = s.z[i] + beta*s.p[i]
		}
		s.it++
		s.resid = linalg.Norm2(linalg.DotSerial, s.r) / s.bnorm
		if s.resid <= s.tol {
			s.done = true
		}
	}
	return s.it, s.resid, s.done, nil
}

// Solution returns a copy of the current iterate.
func (s *IterativeSolverComponent) Solution() []float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]float64(nil), s.x...)
}

// Iterations reports the iterations completed so far.
func (s *IterativeSolverComponent) Iterations() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.it
}

// Residual reports the current relative residual.
func (s *IterativeSolverComponent) Residual() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.resid
}

// Converged reports whether the solve has reached tolerance.
func (s *IterativeSolverComponent) Converged() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.done
}

// Checkpoint implements cca.Checkpointable: the complete mid-Krylov state
// as a ckpt stream. Call it between Steps (the framework's quiesce
// guarantees that during a swap; remote servants checkpoint between step
// invocations by construction).
func (s *IterativeSolverComponent) Checkpoint(wr io.Writer) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	w := ckpt.NewWriter(wr)
	if !s.started {
		return w.Close() // an unstarted solver checkpoints to an empty stream
	}
	w.Uint64(ckSecIt, uint64(s.it))
	w.Float64(ckSecRZ, s.rz)
	w.Float64(ckSecTol, s.tol)
	w.Float64(ckSecBNorm, s.bnorm)
	var doneBit uint64
	if s.done {
		doneBit = 1
	}
	w.Uint64(ckSecDone, doneBit)
	w.Float64s(ckSecB, s.b)
	w.Float64s(ckSecX, s.x)
	w.Float64s(ckSecR, s.r)
	w.Float64s(ckSecZ, s.z)
	w.Float64s(ckSecP, s.p)
	return w.Close()
}

// Restore implements cca.Checkpointable.
func (s *IterativeSolverComponent) Restore(rd io.Reader) error {
	r, err := ckpt.NewReader(rd)
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(r.Names()) == 0 {
		s.started, s.done = false, false
		return nil
	}
	read := func(name string) []float64 {
		if err != nil {
			return nil
		}
		var v []float64
		v, err = r.Float64s(name)
		return v
	}
	var it, doneBit uint64
	if it, err = r.Uint64(ckSecIt); err != nil {
		return err
	}
	if s.rz, err = r.Float64(ckSecRZ); err != nil {
		return err
	}
	if s.tol, err = r.Float64(ckSecTol); err != nil {
		return err
	}
	if s.bnorm, err = r.Float64(ckSecBNorm); err != nil {
		return err
	}
	if doneBit, err = r.Uint64(ckSecDone); err != nil {
		return err
	}
	s.b, s.x = read(ckSecB), read(ckSecX)
	s.r, s.z, s.p = read(ckSecR), read(ckSecZ), read(ckSecP)
	if err != nil {
		return err
	}
	if len(s.x) != len(s.b) || len(s.r) != len(s.b) || len(s.z) != len(s.b) || len(s.p) != len(s.b) {
		return fmt.Errorf("%w: inconsistent vector lengths", ckpt.ErrFormat)
	}
	s.n = len(s.b)
	s.it = int(it)
	s.done = doneBit != 0
	s.started = true
	s.ap = make([]float64, s.n)
	s.resid = linalg.Norm2(linalg.DotSerial, s.r) / s.bnorm
	return nil
}
