package hydro

import (
	"errors"
	"math"
	"sync"
	"testing"

	"repro/internal/cca"
	"repro/internal/cca/framework"
	"repro/internal/mesh"
	"repro/internal/mpi"
)

// buildPipeline wires mesh -> flow on each cohort rank and returns the flow
// port. Uses the cohort framework so port registrations are verified
// consistent across ranks.
func buildPipeline(t *testing.T, comm *mpi.Comm, m *mesh.Mesh, cfg Config) FlowPort {
	t.Helper()
	c := framework.NewCohort(comm, framework.Options{})
	err := c.InstallParallel("mesh", func(rank int) cca.Component {
		mc, err := NewMeshComponent(m, "rcb", comm.Size(), rank)
		if err != nil {
			t.Errorf("mesh: %v", err)
			return &MeshComponent{}
		}
		return mc
	})
	if err != nil {
		t.Fatalf("install mesh: %v", err)
	}
	err = c.InstallParallel("flow", func(rank int) cca.Component {
		fc, err := NewFlowComponent(comm, cfg)
		if err != nil {
			t.Errorf("flow: %v", err)
			return nil
		}
		return fc
	})
	if err != nil {
		t.Fatalf("install flow: %v", err)
	}
	if err := c.VerifyPorts("flow"); err != nil {
		t.Fatalf("verify: %v", err)
	}
	if _, err := c.ConnectParallel("flow", "mesh", "mesh", "mesh"); err != nil {
		t.Fatalf("connect: %v", err)
	}
	comp, _ := c.F.Component("flow")
	return comp.(FlowPort)
}

func TestDiffusionDecaysAndStaysBounded(t *testing.T) {
	m := mesh.StructuredQuad(12, 12)
	mpi.Run(2, func(comm *mpi.Comm) {
		flow := buildPipeline(t, comm, m, Config{Nu: 1, Tol: 1e-10})
		var prev Stats
		for i := 0; i < 5; i++ {
			st, err := flow.Step(0.05)
			if err != nil {
				t.Errorf("step %d: %v", i, err)
				return
			}
			if st.Min < -1e-9 || st.Max > 1+1e-9 {
				t.Errorf("step %d: field out of bounds [%v, %v]", i, st.Min, st.Max)
				return
			}
			if i > 0 && st.Max > prev.Max+1e-12 {
				t.Errorf("step %d: max grew %v -> %v (diffusion must decay)", i, prev.Max, st.Max)
				return
			}
			if st.SolveIters == 0 {
				t.Errorf("step %d: no solver iterations", i)
			}
			prev = st
		}
		if math.Abs(flow.Time()-0.25) > 1e-12 {
			t.Errorf("time = %v", flow.Time())
		}
	})
}

func TestParallelMatchesSerial(t *testing.T) {
	m := mesh.TriangulatedRect(8, 8)
	cfg := Config{Nu: 0.5, Vel: [2]float64{1, 0.5}, Tol: 1e-12}
	const steps = 3
	const dt = 0.01

	// Serial reference (1 rank).
	serialField := make([]float64, m.NumNodes())
	mpi.Run(1, func(comm *mpi.Comm) {
		flow := buildPipeline(t, comm, m, cfg)
		for i := 0; i < steps; i++ {
			if _, err := flow.Step(dt); err != nil {
				t.Errorf("serial step: %v", err)
				return
			}
		}
		fc := flow.(*FlowComponent)
		for li, g := range fc.dec.Owned {
			serialField[g] = fc.u[li]
		}
	})

	for _, p := range []int{2, 3, 4} {
		parField := make([]float64, m.NumNodes())
		mpi.Run(p, func(comm *mpi.Comm) {
			flow := buildPipeline(t, comm, m, cfg)
			for i := 0; i < steps; i++ {
				if _, err := flow.Step(dt); err != nil {
					t.Errorf("p=%d step: %v", p, err)
					return
				}
			}
			fc := flow.(*FlowComponent)
			for li, g := range fc.dec.Owned {
				parField[g] = fc.u[li]
			}
		})
		for i := range serialField {
			if math.Abs(parField[i]-serialField[i]) > 1e-8 {
				t.Fatalf("p=%d: node %d: parallel %v vs serial %v", p, i, parField[i], serialField[i])
			}
		}
	}
}

func TestPureDiffusionSymmetryPreserved(t *testing.T) {
	// With no advection and a centered bump on a symmetric mesh, the field
	// stays symmetric under x -> 1-x.
	const n = 10
	m := mesh.StructuredQuad(n, n)
	mpi.Run(2, func(comm *mpi.Comm) {
		flow := buildPipeline(t, comm, m, Config{Nu: 1, Tol: 1e-12})
		for i := 0; i < 3; i++ {
			if _, err := flow.Step(0.02); err != nil {
				t.Errorf("step: %v", err)
				return
			}
		}
		fc := flow.(*FlowComponent)
		field := make([]float64, m.NumNodes())
		local := make([]float64, m.NumNodes())
		for li, g := range fc.dec.Owned {
			local[g] = fc.u[li]
		}
		sum, err := comm.AllreduceFloat64(local, mpi.Sum)
		if err != nil {
			t.Errorf("gather: %v", err)
			return
		}
		copy(field, sum)
		if comm.Rank() != 0 {
			return
		}
		for iy := 0; iy <= n; iy++ {
			for ix := 0; ix <= n; ix++ {
				a := field[iy*(n+1)+ix]
				b := field[iy*(n+1)+(n-ix)]
				if math.Abs(a-b) > 1e-9 {
					t.Errorf("asymmetry at (%d,%d): %v vs %v", ix, iy, a, b)
					return
				}
			}
		}
	})
}

func TestAdvectionMovesBump(t *testing.T) {
	// Strong +x advection must shift the field's center of mass right.
	m := mesh.StructuredQuad(16, 16)
	mpi.Run(2, func(comm *mpi.Comm) {
		flow := buildPipeline(t, comm, m, Config{Nu: 0.05, Vel: [2]float64{4, 0}, Tol: 1e-10})
		centerX := func(fc *FlowComponent) float64 {
			var sxw, sw float64
			for li, g := range fc.dec.Owned {
				w := fc.u[li]
				sxw += w * m.Coords[g][0]
				sw += w
			}
			gx, err := comm.AllreduceScalar(sxw, mpi.Sum)
			if err != nil {
				t.Errorf("reduce: %v", err)
			}
			gw, err := comm.AllreduceScalar(sw, mpi.Sum)
			if err != nil {
				t.Errorf("reduce: %v", err)
			}
			return gx / gw
		}
		fc := flow.(*FlowComponent)
		if _, err := flow.Step(0.005); err != nil {
			t.Errorf("step: %v", err)
			return
		}
		x0 := centerX(fc)
		for i := 0; i < 10; i++ {
			if _, err := flow.Step(0.005); err != nil {
				t.Errorf("step: %v", err)
				return
			}
		}
		x1 := centerX(fc)
		if x1 <= x0 {
			t.Errorf("center of mass did not advect: %v -> %v", x0, x1)
		}
	})
}

func TestMonitorFanOut(t *testing.T) {
	m := mesh.StructuredQuad(6, 6)
	mpi.Run(2, func(comm *mpi.Comm) {
		c := framework.NewCohort(comm, framework.Options{})
		if err := c.InstallParallel("mesh", func(rank int) cca.Component {
			mc, _ := NewMeshComponent(m, "greedy", comm.Size(), rank)
			return mc
		}); err != nil {
			t.Errorf("install: %v", err)
			return
		}
		if err := c.InstallParallel("flow", func(rank int) cca.Component {
			fc, _ := NewFlowComponent(comm, Config{Nu: 1})
			return fc
		}); err != nil {
			t.Errorf("install: %v", err)
			return
		}
		// Two monitors: fan-out must reach both.
		recorders := []*recordingMonitor{{}, {}}
		for i, r := range recorders {
			name := []string{"mon1", "mon2"}[i]
			r := r
			if err := c.InstallParallel(name, func(rank int) cca.Component { return r }); err != nil {
				t.Errorf("install %s: %v", name, err)
				return
			}
		}
		if _, err := c.ConnectParallel("flow", "mesh", "mesh", "mesh"); err != nil {
			t.Errorf("connect: %v", err)
			return
		}
		if _, err := c.ConnectParallel("flow", "monitor", "mon1", "monitor"); err != nil {
			t.Errorf("connect: %v", err)
			return
		}
		if _, err := c.ConnectParallel("flow", "monitor", "mon2", "monitor"); err != nil {
			t.Errorf("connect: %v", err)
			return
		}
		comp, _ := c.F.Component("flow")
		if _, err := comp.(FlowPort).Step(0.01); err != nil {
			t.Errorf("step: %v", err)
			return
		}
		// Each rank's flow member notified its local member of each
		// monitor exactly once (fan-out of one call to two listeners).
		for i, r := range recorders {
			if got := r.count(); got != 1 {
				t.Errorf("monitor %d observed %d times, want 1", i, got)
			}
		}
	})
}

type recordingMonitor struct {
	mu sync.Mutex
	n  int
}

func (r *recordingMonitor) SetServices(svc cca.Services) error {
	return svc.AddProvidesPort(r, cca.PortInfo{Name: "monitor", Type: TypeMonitor})
}

func (r *recordingMonitor) Observe(step int, st Stats) {
	r.mu.Lock()
	r.n++
	r.mu.Unlock()
}

func (r *recordingMonitor) count() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.n
}

func TestConfigValidation(t *testing.T) {
	mpi.Run(1, func(comm *mpi.Comm) {
		if _, err := NewFlowComponent(comm, Config{Nu: 0}); !errors.Is(err, ErrHydro) {
			t.Errorf("nu err = %v", err)
		}
		if _, err := NewFlowComponent(comm, Config{Nu: 1, Prec: "ilu0"}); !errors.Is(err, ErrHydro) {
			t.Errorf("prec err = %v", err)
		}
	})
}

func TestStepErrors(t *testing.T) {
	m := mesh.StructuredQuad(4, 4)
	mpi.Run(1, func(comm *mpi.Comm) {
		flow := buildPipeline(t, comm, m, Config{Nu: 1})
		if _, err := flow.Step(-1); !errors.Is(err, ErrHydro) {
			t.Errorf("dt err = %v", err)
		}
		// CFL violation with absurd velocity.
		flow2 := buildPipeline2(t, comm, m, Config{Nu: 1, Vel: [2]float64{1e6, 0}})
		if _, err := flow2.Step(0.1); !errors.Is(err, ErrHydro) {
			t.Errorf("cfl err = %v", err)
		}
	})
}

// buildPipeline2 is buildPipeline with distinct instance names so two
// pipelines can coexist in one test world.
func buildPipeline2(t *testing.T, comm *mpi.Comm, m *mesh.Mesh, cfg Config) FlowPort {
	t.Helper()
	c := framework.NewCohort(comm, framework.Options{})
	if err := c.InstallParallel("mesh2", func(rank int) cca.Component {
		mc, _ := NewMeshComponent(m, "rcb", comm.Size(), rank)
		return mc
	}); err != nil {
		t.Fatalf("install: %v", err)
	}
	if err := c.InstallParallel("flow2", func(rank int) cca.Component {
		fc, _ := NewFlowComponent(comm, cfg)
		return fc
	}); err != nil {
		t.Fatalf("install: %v", err)
	}
	if _, err := c.ConnectParallel("flow2", "mesh", "mesh2", "mesh"); err != nil {
		t.Fatalf("connect: %v", err)
	}
	comp, _ := c.F.Component("flow2")
	return comp.(FlowPort)
}

func TestFlowWithJacobiPrecFewerIters(t *testing.T) {
	m := mesh.StructuredQuad(20, 20)
	mpi.Run(2, func(comm *mpi.Comm) {
		plain := buildPipeline(t, comm, m, Config{Nu: 2, Tol: 1e-10})
		jac := buildPipeline2(t, comm, m, Config{Nu: 2, Tol: 1e-10, Prec: "jacobi"})
		sp, err := plain.Step(0.5)
		if err != nil {
			t.Errorf("plain: %v", err)
			return
		}
		sj, err := jac.Step(0.5)
		if err != nil {
			t.Errorf("jacobi: %v", err)
			return
		}
		if sj.SolveIters > sp.SolveIters {
			t.Errorf("jacobi %d iters > plain %d", sj.SolveIters, sp.SolveIters)
		}
	})
}

func TestSideOfDecomposition(t *testing.T) {
	m := mesh.StructuredQuad(6, 6)
	part := mesh.RCB{}.PartitionNodes(m, 3)
	for r := 0; r < 3; r++ {
		d, err := mesh.Decompose(m, part, 3, r)
		if err != nil {
			t.Fatal(err)
		}
		side, err := SideOf(d, nil)
		if err != nil {
			t.Fatal(err)
		}
		if side.Map.GlobalLen() != m.NumNodes() || side.Map.Ranks() != 3 {
			t.Fatalf("side map = %v", side.Map)
		}
		if side.Map.LocalLen(r) != d.NumOwned() {
			t.Errorf("rank %d local len %d, want %d", r, side.Map.LocalLen(r), d.NumOwned())
		}
	}
	// Custom world ranks are passed through.
	d, _ := mesh.Decompose(m, part, 3, 0)
	side, err := SideOf(d, []int{5, 6, 7})
	if err != nil {
		t.Fatal(err)
	}
	if side.WorldRanks[2] != 7 {
		t.Errorf("world ranks = %v", side.WorldRanks)
	}
}

func TestSteadyStateWithSource(t *testing.T) {
	// With a steady source, the semi-implicit scheme must converge to a
	// nonzero steady state: successive step differences shrink toward 0.
	m := mesh.StructuredQuad(10, 10)
	mpi.Run(2, func(comm *mpi.Comm) {
		flow := buildPipeline(t, comm, m, Config{
			Nu: 1, Tol: 1e-12,
			InitialCondition: func(x, y float64) float64 { return 0 },
			Source: func(x, y float64) float64 {
				dx, dy := x-0.5, y-0.5
				return 10 * math.Exp(-20*(dx*dx+dy*dy))
			},
		})
		// The graph Laplacian's smallest eigenvalue is O(1/n²), so the
		// diffusive time constant is ~6 here; the implicit scheme is
		// unconditionally stable, allowing large steps to reach it.
		var prevNorm float64
		var diffs []float64
		for i := 0; i < 80; i++ {
			st, err := flow.Step(0.5)
			if err != nil {
				t.Errorf("step: %v", err)
				return
			}
			diffs = append(diffs, math.Abs(st.Norm2-prevNorm))
			prevNorm = st.Norm2
		}
		if prevNorm < 0.01 {
			t.Errorf("steady state is trivially zero: ‖u‖=%v", prevNorm)
		}
		// Late-time step-to-step change must be tiny relative to early.
		if diffs[len(diffs)-1] > diffs[1]*1e-3 {
			t.Errorf("not converging to steady state: first diff %v, last %v", diffs[1], diffs[len(diffs)-1])
		}
	})
}
