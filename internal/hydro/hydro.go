// Package hydro is the reproduction's CHAD-like mini-app: the parallel
// numerical components of the paper's Figure 1 and §2.1. CHAD itself is a
// proprietary Fortran 90 code; what the paper uses it for is its *shape* —
// "hybrid unstructured meshes", "encapsulation of nonlocal communication in
// gather/scatter routines using MPI", and semi-implicit schemes whose "most
// computationally intensive phase ... is the solution of discretized linear
// systems" (§2.2). This package reproduces that shape:
//
//   - MeshComponent distributes an unstructured mesh across the cohort
//     (Figure 1's component A, "a mesh [that] uses MPI to communicate among
//     the four processes over which it is distributed");
//   - FlowComponent advances a scalar transport equation with an explicit
//     upwind advection step and a semi-implicit (backward-Euler) diffusion
//     solve by parallel preconditioned CG over halo-exchanged operators —
//     the tightly coupled solver pipeline of Figure 1's upper half;
//   - the flow field is published through a collective DistArray port so
//     differently distributed tools (visualization, statistics) can attach
//     dynamically — Figure 1's lower half and the §2.2 scenario of
//     "dynamically attaching a visualization tool to an ongoing simulation".
package hydro

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/cca"
	"repro/internal/cca/collective"
	"repro/internal/linalg"
	"repro/internal/mesh"
	"repro/internal/mpi"
)

// Port type names.
const (
	TypeMesh    = "chad.Mesh"
	TypeFlow    = "chad.Flow"
	TypeMonitor = "cca.ports.Monitor"
)

// ErrHydro reports simulation configuration errors.
var ErrHydro = errors.New("hydro: invalid configuration")

// MeshPort is the provides-port interface of MeshComponent: each cohort
// rank sees the global mesh plus its own decomposition.
type MeshPort interface {
	Mesh() *mesh.Mesh
	Decomp() *mesh.Decomposition
}

// Stats summarizes one timestep, globally reduced across the cohort.
type Stats struct {
	Step       int
	Time       float64
	Min, Max   float64
	Mean       float64
	Norm2      float64
	SolveIters int
}

func (s Stats) String() string {
	return fmt.Sprintf("step=%d t=%.4f min=%.4g max=%.4g mean=%.4g ‖u‖=%.4g iters=%d",
		s.Step, s.Time, s.Min, s.Max, s.Mean, s.Norm2, s.SolveIters)
}

// FlowPort is the provides-port interface of FlowComponent: the stepping
// API the time integrator (or an interactive builder) drives.
type FlowPort interface {
	// Step advances one timestep of length dt and returns global stats.
	Step(dt float64) (Stats, error)
	// Time reports accumulated simulation time.
	Time() float64
	// OwnedField returns this rank's owned chunk of the field (live
	// storage — read-only for callers).
	OwnedField() []float64
}

// MonitorPort is the uses-port interface fanned out to attached monitors
// after every step ("one call may correspond to zero or more invocations").
type MonitorPort interface {
	Observe(step int, stats Stats)
}

// --- MeshComponent ---

// MeshComponent provides the decomposed mesh to the rest of the cohort.
type MeshComponent struct {
	m      *mesh.Mesh
	decomp *mesh.Decomposition
}

var (
	_ cca.Component = (*MeshComponent)(nil)
	_ MeshPort      = (*MeshComponent)(nil)
)

// NewMeshComponent partitions m over p ranks with the named partitioner
// and builds rank's view. Each cohort member constructs its own instance
// (same mesh, same partition — SPMD determinism keeps them consistent).
func NewMeshComponent(m *mesh.Mesh, partitioner string, p, rank int) (*MeshComponent, error) {
	pt, err := mesh.NewPartitioner(partitioner)
	if err != nil {
		return nil, err
	}
	part := pt.PartitionNodes(m, p)
	d, err := mesh.Decompose(m, part, p, rank)
	if err != nil {
		return nil, err
	}
	return &MeshComponent{m: m, decomp: d}, nil
}

// SetServices implements cca.Component.
func (mc *MeshComponent) SetServices(svc cca.Services) error {
	return svc.AddProvidesPort(mc, cca.PortInfo{Name: "mesh", Type: TypeMesh})
}

// Mesh implements MeshPort.
func (mc *MeshComponent) Mesh() *mesh.Mesh { return mc.m }

// Decomp implements MeshPort.
func (mc *MeshComponent) Decomp() *mesh.Decomposition { return mc.decomp }

// --- FlowComponent ---

// Config sets the physics of a FlowComponent.
type Config struct {
	// Nu is the diffusion coefficient (> 0).
	Nu float64
	// Vel is the constant advection velocity.
	Vel [2]float64
	// Tol is the linear-solve tolerance (default 1e-8).
	Tol float64
	// Prec names the parallel preconditioner: "" (none) or "jacobi" (the
	// only communication-free choice, hence the parallel default).
	Prec string
	// InitialCondition maps a node coordinate to the initial field value;
	// nil defaults to a Gaussian bump at the domain center.
	InitialCondition func(x, y float64) float64
	// InitialField, when non-nil, supplies the initial value of every
	// global node directly (length = mesh node count) and takes precedence
	// over InitialCondition. This is how a simulation restarts on a
	// refined mesh: the coarse field is carried over by prolongation
	// (mesh.Refine) and handed to the fine pipeline here (§2.2's
	// mid-run "hierarchical mesh refinement" scenario).
	InitialField []float64
	// Source is a steady volumetric source term added explicitly each
	// step (nil for none). With a source the field approaches a steady
	// state instead of decaying to zero.
	Source func(x, y float64) float64
	// WorldRanks maps cohort rank to world rank for collective-port
	// transfers; nil means the identity (cohort rank i is world rank i).
	WorldRanks []int
}

// FlowComponent is one cohort member of the parallel flow solver.
type FlowComponent struct {
	cfg  Config
	comm *mpi.Comm
	svc  cca.Services

	dec      *mesh.Decomposition
	boundary map[int]bool
	u        []float64 // owned+ghost field
	source   []float64 // per-owned-node steady source (nil when unused)
	time     float64
	step     int

	// cached semi-implicit operator per dt value
	cachedDT float64
	op       *mesh.DistOperator
	prec     linalg.Preconditioner
}

var (
	_ cca.Component            = (*FlowComponent)(nil)
	_ FlowPort                 = (*FlowComponent)(nil)
	_ collective.DistArrayPort = (*FlowComponent)(nil)
)

// NewFlowComponent creates one cohort member over comm.
func NewFlowComponent(comm *mpi.Comm, cfg Config) (*FlowComponent, error) {
	if cfg.Nu <= 0 {
		return nil, fmt.Errorf("%w: Nu=%v", ErrHydro, cfg.Nu)
	}
	if cfg.Tol == 0 {
		cfg.Tol = 1e-8
	}
	if cfg.Prec != "" && cfg.Prec != "jacobi" {
		return nil, fmt.Errorf("%w: parallel preconditioner %q (want \"\" or \"jacobi\")", ErrHydro, cfg.Prec)
	}
	return &FlowComponent{cfg: cfg, comm: comm}, nil
}

// SetServices implements cca.Component: uses "mesh", provides "flow" and
// the collective "field" port, and fans out to "monitor".
func (fc *FlowComponent) SetServices(svc cca.Services) error {
	fc.svc = svc
	if err := svc.RegisterUsesPort(cca.PortInfo{Name: "mesh", Type: TypeMesh}); err != nil {
		return err
	}
	if err := svc.RegisterUsesPort(cca.PortInfo{Name: "monitor", Type: TypeMonitor}); err != nil {
		return err
	}
	if err := svc.AddProvidesPort(fc, cca.PortInfo{Name: "flow", Type: TypeFlow}); err != nil {
		return err
	}
	return svc.AddProvidesPort(fc, collective.Info("field", fc.Side()))
}

// RequiredFlavor declares the collective compliance requirement.
func (fc *FlowComponent) RequiredFlavor() cca.Flavor {
	return cca.FlavorInProcess | cca.FlavorCollective
}

// init fetches the mesh port and initializes the field; idempotent.
func (fc *FlowComponent) init() error {
	if fc.dec != nil {
		return nil
	}
	port, err := fc.svc.GetPort("mesh")
	if err != nil {
		return fmt.Errorf("hydro: flow needs a mesh: %w", err)
	}
	defer fc.svc.ReleasePort("mesh")
	mp, ok := port.(MeshPort)
	if !ok {
		return fmt.Errorf("%w: mesh port is %T", ErrHydro, port)
	}
	fc.dec = mp.Decomp()
	m := mp.Mesh()
	fc.boundary = map[int]bool{}
	for _, n := range m.BoundaryNodes() {
		fc.boundary[n] = true
	}
	ic := fc.cfg.InitialCondition
	if ic == nil {
		ic = func(x, y float64) float64 {
			dx, dy := x-0.5, y-0.5
			return math.Exp(-50 * (dx*dx + dy*dy))
		}
	}
	if f := fc.cfg.InitialField; f != nil && len(f) != m.NumNodes() {
		return fmt.Errorf("%w: initial field has %d values for %d nodes", ErrHydro, len(f), m.NumNodes())
	}
	fc.u = make([]float64, fc.dec.NumLocal())
	for li, g := range fc.dec.Owned {
		if fc.boundary[g] {
			continue
		}
		if f := fc.cfg.InitialField; f != nil {
			fc.u[li] = f[g]
			continue
		}
		c := m.Coords[g]
		fc.u[li] = ic(c[0], c[1])
	}
	if fc.cfg.Source != nil {
		fc.source = make([]float64, fc.dec.NumOwned())
		for li, g := range fc.dec.Owned {
			if fc.boundary[g] {
				continue
			}
			c := m.Coords[g]
			fc.source[li] = fc.cfg.Source(c[0], c[1])
		}
	}
	return fc.dec.Exchange(fc.comm, fc.u)
}

// semiImplicitEntries assembles I + dt·ν·L with exact identity rows on
// boundary nodes and interior couplings restricted to interior neighbours
// (Dirichlet elimination, keeping the operator SPD).
func (fc *FlowComponent) semiImplicitEntries(dt float64) []mesh.Entry {
	m := fc.dec.M
	var out []mesh.Entry
	for i := 0; i < m.NumNodes(); i++ {
		if fc.boundary[i] {
			out = append(out, mesh.Entry{Row: i, Col: i, Val: 1})
			continue
		}
		deg := 0
		for _, j := range m.NodeNeighbors(i) {
			deg++
			if !fc.boundary[j] {
				out = append(out, mesh.Entry{Row: i, Col: j, Val: -dt * fc.cfg.Nu})
			}
		}
		out = append(out, mesh.Entry{Row: i, Col: i, Val: 1 + dt*fc.cfg.Nu*float64(deg)})
	}
	return out
}

// ensureOperator (re)builds the cached distributed operator for dt.
func (fc *FlowComponent) ensureOperator(dt float64) error {
	if fc.op != nil && fc.cachedDT == dt {
		return nil
	}
	op, err := mesh.NewDistOperator(fc.dec, fc.comm, fc.semiImplicitEntries(dt))
	if err != nil {
		return err
	}
	fc.op = op
	fc.cachedDT = dt
	fc.prec = linalg.IdentityPrec{}
	if fc.cfg.Prec == "jacobi" {
		diag := fc.op.Local.Diagonal()
		p, err := linalg.NewJacobiFromDiag(diag[:fc.dec.NumOwned()])
		if err != nil {
			return err
		}
		fc.prec = p
	}
	return nil
}

// Step implements FlowPort: explicit upwind advection, then the implicit
// diffusion solve, then globally reduced statistics and monitor fan-out.
func (fc *FlowComponent) Step(dt float64) (Stats, error) {
	if dt <= 0 {
		return Stats{}, fmt.Errorf("%w: dt=%v", ErrHydro, dt)
	}
	if err := fc.init(); err != nil {
		return Stats{}, err
	}
	if err := fc.ensureOperator(dt); err != nil {
		return Stats{}, err
	}
	m := fc.dec.M
	nOwned := fc.dec.NumOwned()

	// Explicit advection: ghost refresh, then edge-upwind update.
	if err := fc.dec.Exchange(fc.comm, fc.u); err != nil {
		return Stats{}, err
	}
	ustar := make([]float64, nOwned)
	v := fc.cfg.Vel
	for li, g := range fc.dec.Owned {
		if fc.boundary[g] {
			continue
		}
		ui := fc.u[li]
		acc := 0.0
		rate := 0.0
		for _, j := range m.NodeNeighbors(g) {
			e := [2]float64{m.Coords[j][0] - m.Coords[g][0], m.Coords[j][1] - m.Coords[g][1]}
			h2 := e[0]*e[0] + e[1]*e[1]
			if h2 == 0 {
				continue
			}
			// Inflow from neighbour j when the velocity points j -> g.
			c := -(v[0]*e[0] + v[1]*e[1]) / h2
			if c > 0 {
				lj := fc.dec.LocalIndex(j)
				acc += c * (fc.u[lj] - ui)
				rate += c
			}
		}
		if dt*rate > 1 {
			return Stats{}, fmt.Errorf("%w: advection CFL violated at node %d (dt·rate=%.3f)", ErrHydro, g, dt*rate)
		}
		ustar[li] = ui + dt*acc
		if fc.source != nil {
			ustar[li] += dt * fc.source[li]
		}
	}
	// Boundary values stay pinned at their Dirichlet value.
	for li, g := range fc.dec.Owned {
		if fc.boundary[g] {
			ustar[li] = fc.u[li]
		}
	}

	// Implicit diffusion: (I + dt ν L) u' = u*.
	x := make([]float64, nOwned)
	copy(x, fc.u[:nOwned]) // warm start from previous field
	res, err := (linalg.CG{}).Solve(fc.op, ustar, x, linalg.Options{
		Tol:  fc.cfg.Tol,
		Dot:  mesh.GlobalDot(fc.comm),
		Prec: fc.prec,
	})
	if err != nil {
		return Stats{}, fmt.Errorf("hydro: diffusion solve: %w", err)
	}
	copy(fc.u[:nOwned], x)
	if err := fc.dec.Exchange(fc.comm, fc.u); err != nil {
		return Stats{}, err
	}

	fc.step++
	fc.time += dt
	stats, err := fc.reduceStats(res.Iterations)
	if err != nil {
		return Stats{}, err
	}

	// Monitor fan-out: zero or more attached monitors, invoked on every
	// cohort rank with identical global stats.
	monitors, err := fc.svc.GetPorts("monitor")
	if err == nil {
		for _, mp := range monitors {
			if mon, ok := mp.(MonitorPort); ok {
				mon.Observe(fc.step, stats)
			}
		}
	}
	return stats, nil
}

// reduceStats computes globally reduced field statistics.
func (fc *FlowComponent) reduceStats(iters int) (Stats, error) {
	nOwned := fc.dec.NumOwned()
	lmin, lmax, lsum, lsq := math.Inf(1), math.Inf(-1), 0.0, 0.0
	for _, v := range fc.u[:nOwned] {
		if v < lmin {
			lmin = v
		}
		if v > lmax {
			lmax = v
		}
		lsum += v
		lsq += v * v
	}
	gmin, err := fc.comm.AllreduceScalar(lmin, mpi.Min)
	if err != nil {
		return Stats{}, err
	}
	gmax, err := fc.comm.AllreduceScalar(lmax, mpi.Max)
	if err != nil {
		return Stats{}, err
	}
	gsum, err := fc.comm.AllreduceScalar(lsum, mpi.Sum)
	if err != nil {
		return Stats{}, err
	}
	gsq, err := fc.comm.AllreduceScalar(lsq, mpi.Sum)
	if err != nil {
		return Stats{}, err
	}
	n := float64(fc.dec.M.NumNodes())
	return Stats{
		Step: fc.step, Time: fc.time,
		Min: gmin, Max: gmax, Mean: gsum / n, Norm2: math.Sqrt(gsq),
		SolveIters: iters,
	}, nil
}

// Time implements FlowPort.
func (fc *FlowComponent) Time() float64 { return fc.time }

// OwnedField implements FlowPort.
func (fc *FlowComponent) OwnedField() []float64 {
	if fc.dec == nil {
		return nil
	}
	return fc.u[:fc.dec.NumOwned()]
}

// Side implements collective.DistArrayPort: the field is distributed per
// the mesh decomposition, expressed as an irregular data map over global
// node ids in each rank's owned order.
func (fc *FlowComponent) Side() collective.Side {
	if fc.dec == nil {
		// Before init the side is unknown; publish an empty map so early
		// introspection fails loudly at connect time rather than silently.
		return collective.Side{}
	}
	side, err := SideOf(fc.dec, fc.cfg.WorldRanks)
	if err != nil {
		return collective.Side{}
	}
	return side
}

// LocalData implements collective.DistArrayPort.
func (fc *FlowComponent) LocalData() []float64 { return fc.OwnedField() }

// Initialize forces mesh binding and field setup before the first Step —
// used by callers that need Side() before stepping.
func (fc *FlowComponent) Initialize() error { return fc.init() }
