package hydro

import (
	"fmt"
	"sync"

	"repro/internal/cca"
)

// IntegratorComponent is Figure 1's time-integration driver: it uses the
// "flow" port and provides the classic Ccaffeine GoPort (SIDL interface
// cca.GoPort) — the button a builder presses to run the simulation — plus
// a typed "integrator" port for programmatic control.
type IntegratorComponent struct {
	// Steps and DT configure what one Go() invocation runs.
	Steps int
	DT    float64

	svc cca.Services

	mu   sync.Mutex
	last Stats
	runs int
}

// IntegratorPort is the typed control interface.
type IntegratorPort interface {
	// Run advances n steps of size dt and returns the final stats.
	Run(n int, dt float64) (Stats, error)
	// LastStats reports the most recent step's statistics.
	LastStats() Stats
}

// GoPort mirrors the generated CcaGoPort binding (int32 go()): zero return
// means success. It is declared here as well so hydro does not import the
// esi bindings package.
type GoPort interface {
	Go() int32
}

// Port type names for the integrator's registrations.
const (
	TypeGoPort     = "cca.GoPort"
	TypeIntegrator = "chad.Integrator"
)

var (
	_ cca.Component  = (*IntegratorComponent)(nil)
	_ IntegratorPort = (*IntegratorComponent)(nil)
	_ GoPort         = (*IntegratorComponent)(nil)
)

// NewIntegratorComponent creates a driver running steps×dt per Go().
func NewIntegratorComponent(steps int, dt float64) *IntegratorComponent {
	return &IntegratorComponent{Steps: steps, DT: dt}
}

// SetServices implements cca.Component.
func (ic *IntegratorComponent) SetServices(svc cca.Services) error {
	ic.svc = svc
	if err := svc.RegisterUsesPort(cca.PortInfo{Name: "flow", Type: TypeFlow}); err != nil {
		return err
	}
	if err := svc.AddProvidesPort(ic, cca.PortInfo{Name: "go", Type: TypeGoPort}); err != nil {
		return err
	}
	return svc.AddProvidesPort(ic, cca.PortInfo{Name: "integrator", Type: TypeIntegrator})
}

// Run implements IntegratorPort.
func (ic *IntegratorComponent) Run(n int, dt float64) (Stats, error) {
	if n <= 0 || dt <= 0 {
		return Stats{}, fmt.Errorf("%w: run n=%d dt=%v", ErrHydro, n, dt)
	}
	port, err := ic.svc.GetPort("flow")
	if err != nil {
		return Stats{}, fmt.Errorf("hydro: integrator needs a flow: %w", err)
	}
	defer ic.svc.ReleasePort("flow")
	flow, ok := port.(FlowPort)
	if !ok {
		return Stats{}, fmt.Errorf("%w: flow port is %T", ErrHydro, port)
	}
	var last Stats
	for i := 0; i < n; i++ {
		last, err = flow.Step(dt)
		if err != nil {
			return last, err
		}
	}
	ic.mu.Lock()
	ic.last = last
	ic.runs++
	ic.mu.Unlock()
	return last, nil
}

// LastStats implements IntegratorPort.
func (ic *IntegratorComponent) LastStats() Stats {
	ic.mu.Lock()
	defer ic.mu.Unlock()
	return ic.last
}

// Runs reports how many Go()/Run() invocations completed.
func (ic *IntegratorComponent) Runs() int {
	ic.mu.Lock()
	defer ic.mu.Unlock()
	return ic.runs
}

// Go implements the cca.GoPort convention: run the configured segment,
// returning 0 on success and nonzero on failure.
func (ic *IntegratorComponent) Go() int32 {
	steps, dt := ic.Steps, ic.DT
	if steps <= 0 {
		steps = 1
	}
	if dt <= 0 {
		dt = 0.01
	}
	if _, err := ic.Run(steps, dt); err != nil {
		return 1
	}
	return 0
}
