package hydro

import (
	"errors"
	"math"
	"testing"

	"repro/internal/cca"
	"repro/internal/cca/framework"
	"repro/internal/mesh"
	"repro/internal/mpi"
)

// wireIntegrator assembles mesh -> flow -> integrator on every rank.
func wireIntegrator(t *testing.T, comm *mpi.Comm, m *mesh.Mesh, steps int, dt float64) *IntegratorComponent {
	t.Helper()
	c := framework.NewCohort(comm, framework.Options{})
	if err := c.InstallParallel("mesh", func(rank int) cca.Component {
		mc, err := NewMeshComponent(m, "rcb", comm.Size(), rank)
		if err != nil {
			t.Errorf("mesh: %v", err)
		}
		return mc
	}); err != nil {
		t.Fatalf("install mesh: %v", err)
	}
	if err := c.InstallParallel("flow", func(rank int) cca.Component {
		fc, err := NewFlowComponent(comm, Config{Nu: 1, Tol: 1e-10})
		if err != nil {
			t.Errorf("flow: %v", err)
		}
		return fc
	}); err != nil {
		t.Fatalf("install flow: %v", err)
	}
	var integ *IntegratorComponent
	if err := c.InstallParallel("driver", func(rank int) cca.Component {
		integ = NewIntegratorComponent(steps, dt)
		return integ
	}); err != nil {
		t.Fatalf("install driver: %v", err)
	}
	if _, err := c.ConnectParallel("flow", "mesh", "mesh", "mesh"); err != nil {
		t.Fatalf("connect: %v", err)
	}
	if _, err := c.ConnectParallel("driver", "flow", "flow", "flow"); err != nil {
		t.Fatalf("connect: %v", err)
	}
	return integ
}

func TestIntegratorRunsSegments(t *testing.T) {
	m := mesh.StructuredQuad(8, 8)
	mpi.Run(2, func(comm *mpi.Comm) {
		integ := wireIntegrator(t, comm, m, 3, 0.01)
		st, err := integ.Run(3, 0.01)
		if err != nil {
			t.Errorf("run: %v", err)
			return
		}
		if st.Step != 3 || math.Abs(st.Time-0.03) > 1e-12 {
			t.Errorf("stats = %+v", st)
		}
		if integ.LastStats().Step != 3 || integ.Runs() != 1 {
			t.Errorf("last = %+v, runs = %d", integ.LastStats(), integ.Runs())
		}
		// A second segment continues from the first.
		st, err = integ.Run(2, 0.01)
		if err != nil || st.Step != 5 {
			t.Errorf("second run: %+v, %v", st, err)
		}
	})
}

func TestIntegratorGoPort(t *testing.T) {
	m := mesh.StructuredQuad(6, 6)
	mpi.Run(1, func(comm *mpi.Comm) {
		integ := wireIntegrator(t, comm, m, 4, 0.005)
		var gp GoPort = integ
		if rc := gp.Go(); rc != 0 {
			t.Fatalf("Go() = %d", rc)
		}
		if integ.LastStats().Step != 4 {
			t.Errorf("steps = %d", integ.LastStats().Step)
		}
	})
}

func TestIntegratorGoFailsWithoutFlow(t *testing.T) {
	f := framework.New(framework.Options{})
	integ := NewIntegratorComponent(1, 0.01)
	if err := f.Install("driver", integ); err != nil {
		t.Fatal(err)
	}
	if rc := integ.Go(); rc == 0 {
		t.Error("Go() succeeded without a flow connection")
	}
	if _, err := integ.Run(1, 0.01); !errors.Is(err, cca.ErrNotConnected) {
		t.Errorf("err = %v", err)
	}
}

func TestIntegratorArgValidation(t *testing.T) {
	m := mesh.StructuredQuad(4, 4)
	mpi.Run(1, func(comm *mpi.Comm) {
		integ := wireIntegrator(t, comm, m, 1, 0.01)
		if _, err := integ.Run(0, 0.01); !errors.Is(err, ErrHydro) {
			t.Errorf("n err = %v", err)
		}
		if _, err := integ.Run(1, -1); !errors.Is(err, ErrHydro) {
			t.Errorf("dt err = %v", err)
		}
	})
}
