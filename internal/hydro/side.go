package hydro

import (
	"repro/internal/array"
	"repro/internal/cca/collective"
	"repro/internal/mesh"
)

// SideOf expresses a mesh decomposition's node field as a collective-port
// Side: rank r of the decomposition owns its (sorted) node ids, grouped
// into contiguous global ranges, with the field's local storage in the same
// order (the layout Decompose produces). worldRanks maps decomposition
// rank to the world rank hosting it; pass nil for the identity mapping.
func SideOf(dec *mesh.Decomposition, worldRanks []int) (collective.Side, error) {
	p := dec.P
	if worldRanks == nil {
		worldRanks = make([]int, p)
		for i := range worldRanks {
			worldRanks[i] = i
		}
	}
	ranges := make([][]array.IndexRange, p)
	// Reconstruct each rank's sorted owned list from the shared partition
	// (every rank holds the full partition vector, so all members build
	// identical sides — the §6.3 consistency requirement).
	for r := 0; r < p; r++ {
		var cur *array.IndexRange
		for g, owner := range dec.Part {
			if owner != r {
				continue
			}
			if cur != nil && cur.Hi == g {
				cur.Hi = g + 1
				continue
			}
			if cur != nil {
				ranges[r] = append(ranges[r], *cur)
			}
			cur = &array.IndexRange{Lo: g, Hi: g + 1}
		}
		if cur != nil {
			ranges[r] = append(ranges[r], *cur)
		}
	}
	m, err := array.NewIrregularMap(len(dec.Part), ranges)
	if err != nil {
		return collective.Side{}, err
	}
	return collective.Side{Map: m, WorldRanks: worldRanks}, nil
}
