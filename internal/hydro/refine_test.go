package hydro

import (
	"errors"
	"math"
	"testing"

	"repro/internal/mesh"
	"repro/internal/mpi"
)

// TestMidRunRefinement reproduces §2.2's scenario at the component level:
// a running simulation is stopped, the mesh refined, the field carried over
// by prolongation, and the simulation continued on the fine mesh through a
// fresh component pipeline — "the researcher may wish to introduce a new
// scheme for hierarchical mesh refinement."
func TestMidRunRefinement(t *testing.T) {
	coarse := mesh.StructuredQuad(8, 8)
	fine, prolong, err := mesh.Refine(coarse)
	if err != nil {
		t.Fatal(err)
	}
	const p = 2
	const dt = 0.01

	mpi.Run(p, func(comm *mpi.Comm) {
		// Phase 1: run on the coarse mesh.
		flowC := buildPipeline(t, comm, coarse, Config{Nu: 1, Tol: 1e-10})
		var lastCoarse Stats
		for i := 0; i < 3; i++ {
			st, err := flowC.Step(dt)
			if err != nil {
				t.Errorf("coarse step: %v", err)
				return
			}
			lastCoarse = st
		}

		// Gather the coarse field globally (sum of disjoint contributions).
		fcC := flowC.(*FlowComponent)
		local := make([]float64, coarse.NumNodes())
		for li, g := range fcC.dec.Owned {
			local[g] = fcC.u[li]
		}
		global, err := comm.AllreduceFloat64(local, mpi.Sum)
		if err != nil {
			t.Errorf("gather: %v", err)
			return
		}

		// Phase 2: refine, interpolate, continue on the fine mesh.
		fineField := prolong.Apply(global)
		flowF := buildPipeline2(t, comm, fine, Config{Nu: 1, Tol: 1e-10, InitialField: fineField})
		st, err := flowF.Step(dt)
		if err != nil {
			t.Errorf("fine step: %v", err)
			return
		}
		// Continuity: the field keeps decaying smoothly across the swap
		// (no spurious energy injection from interpolation).
		if st.Max > lastCoarse.Max+1e-9 {
			t.Errorf("max grew across refinement: %v -> %v", lastCoarse.Max, st.Max)
		}
		if st.Max < lastCoarse.Max*0.5 {
			t.Errorf("field collapsed across refinement: %v -> %v", lastCoarse.Max, st.Max)
		}
		if st.Min < -1e-9 {
			t.Errorf("negative undershoot after refinement: %v", st.Min)
		}
	})
}

func TestInitialFieldValidation(t *testing.T) {
	m := mesh.StructuredQuad(4, 4)
	mpi.Run(1, func(comm *mpi.Comm) {
		flow := buildPipeline(t, comm, m, Config{Nu: 1, InitialField: []float64{1, 2, 3}})
		if _, err := flow.Step(0.01); !errors.Is(err, ErrHydro) {
			t.Errorf("err = %v", err)
		}
	})
}

func TestInitialFieldExactlyApplied(t *testing.T) {
	m := mesh.StructuredQuad(5, 5)
	field := make([]float64, m.NumNodes())
	boundary := map[int]bool{}
	for _, n := range m.BoundaryNodes() {
		boundary[n] = true
	}
	for i := range field {
		if !boundary[i] {
			field[i] = float64(i) / 100
		}
	}
	mpi.Run(2, func(comm *mpi.Comm) {
		flow := buildPipeline(t, comm, m, Config{Nu: 1, Tol: 1e-12, InitialField: field})
		fc := flow.(*FlowComponent)
		if err := fc.Initialize(); err != nil {
			t.Errorf("init: %v", err)
			return
		}
		for li, g := range fc.dec.Owned {
			want := field[g]
			if boundary[g] {
				want = 0
			}
			if math.Abs(fc.u[li]-want) > 1e-15 {
				t.Errorf("node %d: %v, want %v", g, fc.u[li], want)
				return
			}
		}
	})
}
