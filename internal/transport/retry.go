package transport

import (
	"errors"
	"time"
)

// DialRetry dials addr on tr, retrying while nothing is listening there
// yet — the startup race inherent to any rendezvous: the peer's Listen and
// our Dial are concurrent. Only ErrNoListener is retried (the TCP backend
// maps ECONNREFUSED to it, the shm backend its dropped-flock probe);
// every other failure is returned immediately. The retry loop backs off
// from 200µs doubling to a 10ms cap, and gives up with the last dial
// error once timeout elapses.
func DialRetry(tr Transport, addr string, timeout time.Duration) (Conn, error) {
	deadline := time.Now().Add(timeout)
	backoff := 200 * time.Microsecond
	for {
		c, err := tr.Dial(addr)
		if err == nil {
			return c, nil
		}
		if !errors.Is(err, ErrNoListener) {
			return nil, err
		}
		if time.Now().After(deadline) {
			return nil, err
		}
		time.Sleep(backoff)
		if backoff < 10*time.Millisecond {
			backoff *= 2
		}
	}
}
