//go:build !unix

package transport

import "errors"

var errShmUnsupported = errors.New("transport: shm requires a unix platform (flock + mmap)")

// SHM is the same-host shared-memory transport. On non-unix platforms it
// is a stub whose Listen and Dial fail: the implementation depends on
// flock-based liveness and file-backed mmap (see shm.go).
type SHM struct{}

func (SHM) Name() string { return "shm" }

func (SHM) Listen(addr string) (Listener, error) { return nil, errShmUnsupported }

func (SHM) Dial(addr string) (Conn, error) { return nil, errShmUnsupported }
