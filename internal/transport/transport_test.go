package transport

import (
	"bytes"
	"errors"
	"fmt"
	"path/filepath"
	"runtime"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

// transports under test; TCP listens on a kernel-assigned port.
func eachTransport(t *testing.T, f func(t *testing.T, tr Transport, addr string)) {
	t.Helper()
	t.Run("inproc", func(t *testing.T) { f(t, &InProc{}, "svc") })
	t.Run("tcp", func(t *testing.T) { f(t, TCP{}, "127.0.0.1:0") })
	t.Run("shm", func(t *testing.T) { f(t, SHM{}, filepath.Join(t.TempDir(), "ep")) })
}

func TestEchoRoundTrip(t *testing.T) {
	eachTransport(t, func(t *testing.T, tr Transport, addr string) {
		l, err := tr.Listen(addr)
		if err != nil {
			t.Fatal(err)
		}
		defer l.Close()
		done := make(chan error, 1)
		go func() {
			c, err := l.Accept()
			if err != nil {
				done <- err
				return
			}
			defer c.Close()
			for i := 0; i < 3; i++ {
				f, err := c.Recv()
				if err != nil {
					done <- err
					return
				}
				if err := c.Send(append([]byte("echo:"), f...)); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}()

		c, err := tr.Dial(l.Addr())
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		for i := 0; i < 3; i++ {
			msg := []byte(fmt.Sprintf("frame-%d", i))
			if err := c.Send(msg); err != nil {
				t.Fatal(err)
			}
			got, err := c.Recv()
			if err != nil {
				t.Fatal(err)
			}
			if want := append([]byte("echo:"), msg...); !bytes.Equal(got, want) {
				t.Fatalf("got %q, want %q", got, want)
			}
		}
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	})
}

func TestDialNoListener(t *testing.T) {
	ip := &InProc{}
	if _, err := ip.Dial("nowhere"); !errors.Is(err, ErrNoListener) {
		t.Errorf("err = %v", err)
	}
}

func TestListenDuplicateInProc(t *testing.T) {
	ip := &InProc{}
	l, err := ip.Listen("a")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ip.Listen("a"); !errors.Is(err, ErrAddrInUse) {
		t.Errorf("err = %v", err)
	}
	l.Close()
	// Address reusable after close.
	if _, err := ip.Listen("a"); err != nil {
		t.Errorf("relisten: %v", err)
	}
}

func TestCloseUnblocksRecv(t *testing.T) {
	eachTransport(t, func(t *testing.T, tr Transport, addr string) {
		l, err := tr.Listen(addr)
		if err != nil {
			t.Fatal(err)
		}
		defer l.Close()
		accepted := make(chan Conn, 1)
		go func() {
			c, err := l.Accept()
			if err == nil {
				accepted <- c
			}
		}()
		c, err := tr.Dial(l.Addr())
		if err != nil {
			t.Fatal(err)
		}
		srv := <-accepted
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := c.Recv(); !errors.Is(err, ErrClosed) {
				t.Errorf("recv err = %v, want ErrClosed", err)
			}
		}()
		srv.Close()
		wg.Wait()
	})
}

func TestQueuedFramesSurviveClose(t *testing.T) {
	// Frames already in flight must be deliverable after the sender
	// closes (inproc semantics; TCP guarantees this via the socket).
	ip := &InProc{}
	l, _ := ip.Listen("q")
	defer l.Close()
	go func() {
		c, err := l.Accept()
		if err != nil {
			return
		}
		c.Send([]byte("one"))
		c.Send([]byte("two"))
		c.Close()
	}()
	c, err := ip.Dial("q")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"one", "two"} {
		f, err := c.Recv()
		if err != nil {
			t.Fatalf("recv %q: %v", want, err)
		}
		if string(f) != want {
			t.Fatalf("got %q, want %q", f, want)
		}
	}
	if _, err := c.Recv(); !errors.Is(err, ErrClosed) {
		t.Errorf("final recv err = %v", err)
	}
}

func TestFrameTooBig(t *testing.T) {
	ip := &InProc{}
	l, _ := ip.Listen("big")
	defer l.Close()
	go l.Accept()
	c, err := ip.Dial("big")
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Send(make([]byte, MaxFrame+1)); !errors.Is(err, ErrFrameTooBig) {
		t.Errorf("err = %v", err)
	}
}

func TestAcceptAfterListenerClose(t *testing.T) {
	ip := &InProc{}
	l, _ := ip.Listen("x")
	l.Close()
	if _, err := l.Accept(); !errors.Is(err, ErrClosed) {
		t.Errorf("err = %v", err)
	}
}

func TestConcurrentSenders(t *testing.T) {
	// Multiple goroutines sending on one TCP conn must not interleave
	// frames (framing is mutex-protected).
	tr := TCP{}
	l, err := tr.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	const senders, frames = 8, 50
	counts := make(chan int, 1)
	go func() {
		c, err := l.Accept()
		if err != nil {
			counts <- -1
			return
		}
		n := 0
		for i := 0; i < senders*frames; i++ {
			f, err := c.Recv()
			if err != nil {
				counts <- -1
				return
			}
			if len(f) != 100 {
				counts <- -1
				return
			}
			n++
		}
		counts <- n
	}()
	c, err := tr.Dial(l.Addr())
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for s := 0; s < senders; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			frame := make([]byte, 100)
			for i := 0; i < frames; i++ {
				if err := c.Send(frame); err != nil {
					t.Errorf("send: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if n := <-counts; n != senders*frames {
		t.Fatalf("received %d frames", n)
	}
}

func TestInProcDialCloseRace(t *testing.T) {
	// Regression: Dial used to send on the listener backlog without
	// synchronizing against Close closing it — a send on a closed channel
	// panicked the dialer. A dial racing a close must yield ErrNoListener
	// or ErrClosed, never panic.
	for i := 0; i < 100; i++ {
		ip := &InProc{}
		l, err := ip.Listen("race")
		if err != nil {
			t.Fatal(err)
		}
		go func() {
			for {
				c, err := l.Accept()
				if err != nil {
					return
				}
				c.Close()
			}
		}()
		start := make(chan struct{})
		var wg sync.WaitGroup
		for d := 0; d < 4; d++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				<-start
				c, err := ip.Dial("race")
				switch {
				case err == nil:
					c.Close()
				case errors.Is(err, ErrNoListener), errors.Is(err, ErrClosed):
				default:
					t.Errorf("dial during close: %v", err)
				}
			}()
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			l.Close()
		}()
		close(start)
		wg.Wait()
	}
}

func TestInProcQueuedConnClosedByListenerClose(t *testing.T) {
	// A connection that was queued but never accepted must observe
	// ErrClosed after the listener closes, not hang.
	ip := &InProc{}
	l, err := ip.Listen("orphan")
	if err != nil {
		t.Fatal(err)
	}
	c, err := ip.Dial("orphan")
	if err != nil {
		t.Fatal(err)
	}
	l.Close()
	done := make(chan error, 1)
	go func() {
		_, err := c.Recv()
		done <- err
	}()
	select {
	case err := <-done:
		if !errors.Is(err, ErrClosed) {
			t.Errorf("recv err = %v, want ErrClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("orphaned dialer hung after listener close")
	}
}

func TestCoalescedMixedSizeSenders(t *testing.T) {
	// Concurrent senders mixing frames below and above the coalescer's
	// zero-copy cutoff must still deliver every frame whole and
	// uncorrupted.
	tr := TCP{}
	l, err := tr.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	const senders, frames = 8, 40
	sizes := []int{1, 100, coalesceCutoff, coalesceCutoff + 1, 64 << 10}
	type got struct {
		n   int
		err error
	}
	results := make(chan got, 1)
	go func() {
		c, err := l.Accept()
		if err != nil {
			results <- got{0, err}
			return
		}
		n := 0
		for i := 0; i < senders*frames; i++ {
			f, err := c.Recv()
			if err != nil {
				results <- got{n, err}
				return
			}
			if len(f) == 0 {
				results <- got{n, fmt.Errorf("empty frame")}
				return
			}
			fill := f[0]
			for _, b := range f {
				if b != fill {
					results <- got{n, fmt.Errorf("corrupt frame: %d != %d", b, fill)}
					return
				}
			}
			ReleaseFrame(f)
			n++
		}
		results <- got{n, nil}
	}()
	c, err := tr.Dial(l.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var wg sync.WaitGroup
	for s := 0; s < senders; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for i := 0; i < frames; i++ {
				size := sizes[(s+i)%len(sizes)]
				frame := make([]byte, size)
				fill := byte(s + 1)
				for j := range frame {
					frame[j] = fill
				}
				if err := c.Send(frame); err != nil {
					t.Errorf("send: %v", err)
					return
				}
			}
		}(s)
	}
	wg.Wait()
	r := <-results
	if r.err != nil || r.n != senders*frames {
		t.Fatalf("received %d/%d frames, err = %v", r.n, senders*frames, r.err)
	}
}

func TestSendErrorAfterPeerClose(t *testing.T) {
	// Once the write side fails, subsequent Sends report the sticky error.
	tr := TCP{}
	l, err := tr.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	accepted := make(chan Conn, 1)
	go func() {
		c, err := l.Accept()
		if err == nil {
			accepted <- c
		}
	}()
	c, err := tr.Dial(l.Addr())
	if err != nil {
		t.Fatal(err)
	}
	srv := <-accepted
	srv.Close()
	c.Close()
	var sendErr error
	for i := 0; i < 50; i++ {
		if sendErr = c.Send([]byte("x")); sendErr != nil {
			break
		}
	}
	if sendErr == nil {
		t.Fatal("sends kept succeeding on a closed connection")
	}
	if err := c.Send([]byte("y")); err == nil {
		t.Error("send after sticky error succeeded")
	}
}

// Property: arbitrary byte frames round-trip unchanged through inproc.
func TestFrameFidelityProperty(t *testing.T) {
	ip := &InProc{}
	l, err := ip.Listen("prop")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() {
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			go func() {
				for {
					f, err := c.Recv()
					if err != nil {
						return
					}
					c.Send(f)
				}
			}()
		}
	}()
	c, err := ip.Dial("prop")
	if err != nil {
		t.Fatal(err)
	}
	f := func(frame []byte) bool {
		if err := c.Send(frame); err != nil {
			return false
		}
		got, err := c.Recv()
		return err == nil && bytes.Equal(got, frame)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestFlushLeaderStress(t *testing.T) {
	// Regression for a leader-election race: flush() used to release the
	// flushing flag after every window while flushLoop kept looping, so a
	// sender that caught wmu during the leader's between-window yield saw
	// !flushing and became a second concurrent leader — racing on the
	// shared iovec scratch and interleaving writev calls on one socket.
	// With the flag owned solely by flushLoop there is exactly one leader
	// per drain. Reproducing the old bug needs sustained sender pressure
	// (so the leader drains for many windows, each yield an election
	// window), a receiver that does nothing but drain (so the TCP buffer
	// never fills and flushes stay short), frames on both sides of the
	// coalesce cutoff, and >=4 Ps; under -race this setup reported the old
	// bug within a few runs.
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(0))
	if runtime.GOMAXPROCS(0) < 4 {
		runtime.GOMAXPROCS(4)
	}
	tr := TCP{}
	l, err := tr.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	const senders, frames = 32, 2000
	type got struct {
		n   int
		err error
	}
	results := make(chan got, 1)
	go func() {
		c, err := l.Accept()
		if err != nil {
			results <- got{0, err}
			return
		}
		n := 0
		for {
			f, err := c.Recv()
			if err != nil {
				// The client closes the conn once every sender is done;
				// ErrClosed here is the normal end of stream.
				results <- got{n, nil}
				return
			}
			if len(f) != 64 && len(f) != coalesceCutoff+1 {
				results <- got{n, fmt.Errorf("frame of unexpected size %d", len(f))}
				return
			}
			ReleaseFrame(f)
			n++
		}
	}()
	c, err := tr.Dial(l.Addr())
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for s := 0; s < senders; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			small := make([]byte, 64)
			big := make([]byte, coalesceCutoff+1)
			for i := 0; i < frames; i++ {
				f := small
				if (s+i)%7 == 0 {
					f = big
				}
				if err := c.Send(f); err != nil {
					t.Errorf("send: %v", err)
					return
				}
			}
		}(s)
	}
	wg.Wait()
	c.Close()
	r := <-results
	if r.err != nil || r.n != senders*frames {
		t.Fatalf("received %d/%d frames, err = %v", r.n, senders*frames, r.err)
	}
}
