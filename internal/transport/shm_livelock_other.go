//go:build unix && !linux

package transport

import "os"

// Non-Linux unix lacks portable open-file-description locks (the
// constants differ per platform and process-owned fcntl locks are
// released by any same-process open/close of the file), so crash
// liveness probing is disabled: a blocked shm wait on a killed peer
// relies on the caller's own timeouts, as it did before probing existed.

func shmLiveLock(f *os.File, dialer bool) {}

func shmPeerAlive(f *os.File, dialer bool) bool { return true }
