package transport

import "repro/internal/obs"

// Shared-memory transport counters. Declared outside the unix-only files
// so the waiter (portable) and the !unix stub build against them too.
// frames/bytes flow through the common transport.frames_* counters, same
// as InProc and TCP; these cover shm-specific lifecycle events.
var (
	cShmDials   = obs.NewCounter("transport.shm.dials")
	cShmAccepts = obs.NewCounter("transport.shm.accepts")
	cShmStale   = obs.NewCounter("transport.shm.stale_cleaned")
	// cShmStalls counts ring waits that exhausted the spin and yield
	// phases and had to take a timed sleep — the shm analogue of a
	// would-block. A rising rate means the rings are too small for the
	// offered load, or the peer is descheduled (oversubscribed host).
	cShmStalls = obs.NewCounter("transport.shm.ring_stalls")
	// cShmPeerDead counts connections declared dead by the flock liveness
	// probe: the peer process vanished (crash, kill) while this side was
	// blocked on the ring.
	cShmPeerDead = obs.NewCounter("transport.shm.peer_dead")
)
