package transport

import (
	"sync/atomic"
	"testing"
	"time"
)

// TestWaiterSleepCapsAtMax pins the idle-wakeup contract: the doubling
// sleep must saturate at spinSleepMax, and spinSleepMax must stay at or
// below 200µs so a call landing on a long-idle connection pays at most one
// short sleep of latency (DESIGN.md §10).
func TestWaiterSleepCapsAtMax(t *testing.T) {
	if spinSleepMax > 200*time.Microsecond {
		t.Fatalf("spinSleepMax = %v, must not exceed 200µs", spinSleepMax)
	}
	var w waiter
	// Drive the waiter far past the spin, yield, and doubling phases; every
	// intermediate sleep must stay at or below the cap.
	for i := 0; i < spinCount+yieldCount+64; i++ {
		w.pause()
		if w.sleep > spinSleepMax {
			t.Fatalf("pause %d: sleep grew past cap: %v", i, w.sleep)
		}
	}
	if w.sleep != spinSleepMax {
		t.Errorf("saturated sleep = %v, want %v", w.sleep, spinSleepMax)
	}
	w.reset()
	if w.spins != 0 || w.sleep != 0 {
		t.Error("reset did not re-arm the waiter")
	}
}

// TestWaiterIdleWakeLatency measures the end-to-end regression the cap
// exists to bound: a waiter that has been idle for a full second must
// notice new work within a few sleep periods, not the old 1ms-deep sleeps.
func TestWaiterIdleWakeLatency(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test skipped in -short")
	}
	const trials = 5
	var worst time.Duration
	for trial := 0; trial < trials; trial++ {
		var ready atomic.Bool
		var latency atomic.Int64
		done := make(chan struct{})
		go func() {
			defer close(done)
			var w waiter
			for !ready.Load() {
				w.pause()
			}
			latency.Store(int64(time.Now().UnixNano()))
		}()
		// Let the waiter sink to its deepest sleep.
		time.Sleep(time.Second)
		setAt := time.Now()
		ready.Store(true)
		<-done
		wake := time.Duration(latency.Load() - setAt.UnixNano())
		if wake > worst {
			worst = wake
		}
	}
	// The deepest sleep is spinSleepMax; allow generous scheduler slop but
	// fail on anything resembling the old millisecond-class wakeups
	// compounded by scheduling (the bug this guards against is the cap
	// silently growing again).
	if worst > 100*spinSleepMax {
		t.Errorf("worst idle wake latency %v with spinSleepMax %v", worst, spinSleepMax)
	}
	t.Logf("worst idle wake latency over %d trials: %v (cap %v)", trials, worst, spinSleepMax)
}
