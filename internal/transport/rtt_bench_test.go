package transport

import (
	"path/filepath"
	"testing"
)

func BenchmarkShmRoundTrip8B(b *testing.B) {
	tr := SHM{}
	l, err := tr.Listen(filepath.Join(b.TempDir(), "ep"))
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	go func() {
		c, err := l.Accept()
		if err != nil {
			return
		}
		for {
			f, err := c.Recv()
			if err != nil {
				return
			}
			if c.Send(f) != nil {
				return
			}
			ReleaseFrame(f)
		}
	}()
	c, err := tr.Dial(l.Addr())
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	msg := make([]byte, 8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.Send(msg); err != nil {
			b.Fatal(err)
		}
		f, err := c.Recv()
		if err != nil {
			b.Fatal(err)
		}
		ReleaseFrame(f)
	}
}
