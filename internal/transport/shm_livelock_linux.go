//go:build linux

package transport

import (
	"os"
	"syscall"
)

// Crash liveness for shm rings via Linux open-file-description locks
// (fcntl F_OFD_*). Each side of a connection holds a read lock on its own
// byte of the ring file — byte 0 for the dialer, byte 1 for the acceptor
// — for as long as its mapping is open. OFD locks are the only fit here:
//
//   - Probing is non-destructive: F_OFD_GETLK only queries, unlike a
//     flock LOCK_EX|LOCK_NB conversion, which drops the caller's own
//     shared lock when it fails (flock(2)) — two mutually-blocked peers
//     probing each other would destroy the very marks they test.
//   - They belong to the file description, not the process, so the two
//     ends of a same-process connection conflict with each other like
//     distinct processes, and unrelated open/close cycles on the file
//     (the listener's scan and sweep probes) cannot release them —
//     process-owned fcntl record locks would fail on both counts.
//   - The kernel releases them when the owning description closes, which
//     includes process death by any means — exactly the signal wanted.
const (
	fOFDGetLk = 36 // F_OFD_GETLK
	fOFDSetLk = 37 // F_OFD_SETLK
)

func shmLiveByte(dialer bool) int64 {
	if dialer {
		return 0
	}
	return 1
}

// shmLiveLock places this side's liveness mark. Best-effort: on kernels
// without OFD locks the probe side degrades to "alive" too, so a missing
// mark never produces a false death.
func shmLiveLock(f *os.File, dialer bool) {
	lk := syscall.Flock_t{
		Type:   syscall.F_RDLCK,
		Whence: 0,
		Start:  shmLiveByte(dialer),
		Len:    1,
	}
	_ = syscall.FcntlFlock(f.Fd(), fOFDSetLk, &lk)
}

// shmPeerAlive reports whether the peer's liveness mark is still held.
// Indeterminate probes (fcntl errors) report alive.
func shmPeerAlive(f *os.File, dialer bool) bool {
	lk := syscall.Flock_t{
		Type:   syscall.F_WRLCK,
		Whence: 0,
		Start:  shmLiveByte(!dialer),
		Len:    1,
	}
	if err := syscall.FcntlFlock(f.Fd(), fOFDGetLk, &lk); err != nil {
		return true
	}
	return lk.Type != syscall.F_UNLCK
}
