package transport

import (
	"fmt"
	"strings"
	"sync"
)

// defaultInProc backs inproc:// addresses resolved through ForScheme, so
// two components in the same process that only share an address string
// still land on the same listener table.
var (
	defaultInProcOnce sync.Once
	defaultInProc     *InProc
)

// DefaultInProc returns the process-wide InProc instance used by
// ForScheme for inproc:// addresses.
func DefaultInProc() *InProc {
	defaultInProcOnce.Do(func() { defaultInProc = &InProc{} })
	return defaultInProc
}

// ForScheme resolves an address of the form scheme://rest to a transport
// and the backend-native address to pass to its Listen/Dial:
//
//	tcp://host:port   -> TCP{}, "host:port"
//	shm:///run/x      -> SHM{}, "/run/x"  (directory; unix only)
//	inproc://name     -> DefaultInProc(), "name"
//
// A bare "host:port" with no scheme resolves to TCP for compatibility
// with addresses printed by older tooling.
func ForScheme(addr string) (Transport, string, error) {
	scheme, rest, ok := strings.Cut(addr, "://")
	if !ok {
		return TCP{}, addr, nil
	}
	switch scheme {
	case "tcp":
		return TCP{}, rest, nil
	case "shm":
		return SHM{}, rest, nil
	case "inproc":
		return DefaultInProc(), rest, nil
	default:
		return nil, "", fmt.Errorf("transport: unknown scheme %q in %q", scheme, addr)
	}
}
