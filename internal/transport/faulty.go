package transport

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// Injected-fault counters: FaultStats mirrored into the obs registry so a
// chaos run's fault plan shows up on the same dashboard as the RED
// metrics it perturbs.
var (
	cFaultDrops    = obs.NewCounter("transport.faults.drops")
	cFaultCorrupts = obs.NewCounter("transport.faults.corrupts")
	cFaultDelays   = obs.NewCounter("transport.faults.delays")
	cFaultSevers   = obs.NewCounter("transport.faults.severs")
)

// Faults configures a Faulty transport wrapper. Probabilities are per
// frame, evaluated on the Send side of every wrapped connection (both the
// dialed and the accepted end are wrapped, so faults apply to requests and
// replies alike). All randomness comes from one seeded source, so a chaos
// run is reproducible from its seed.
type Faults struct {
	// Seed initializes the fault RNG; runs with equal seeds and equal
	// traffic order inject identical faults.
	Seed int64
	// DropProb silently discards a sent frame (the peer never sees it).
	DropProb float64
	// CorruptProb flips one byte of a sent frame (delivered corrupted).
	CorruptProb float64
	// DelayProb stalls a sent frame by Delay before delivery.
	DelayProb float64
	Delay     time.Duration
	// SeverAfterSends closes the connection (both directions) after this
	// many frames have been sent on it; 0 means never.
	SeverAfterSends int
}

// Faulty wraps an inner Transport, injecting deterministic faults into
// every connection established through it — the test substrate the
// supervision layer is proven against. The zero fault set is a transparent
// pass-through. Faulty additionally supports whole-"network" operations:
// SeverAll hard-closes every live connection (a crash), BlackholeAll makes
// every live connection swallow writes without delivering or erroring (a
// silent partition only a heartbeat can detect).
type Faulty struct {
	Inner Transport

	mu     sync.Mutex
	faults Faults
	rng    *rand.Rand
	conns  map[*faultyConn]struct{}
	stats  FaultStats
}

// FaultStats counts injected faults, so a chaos test can assert its fault
// plan actually fired (a scenario that injects nothing proves nothing).
type FaultStats struct {
	Drops    int
	Corrupts int
	Delays   int
	Severs   int
}

// Stats reports the faults injected so far.
func (t *Faulty) Stats() FaultStats {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.stats
}

// NewFaulty wraps inner with the given fault plan.
func NewFaulty(inner Transport, f Faults) *Faulty {
	return &Faulty{
		Inner:  inner,
		faults: f,
		rng:    rand.New(rand.NewSource(f.Seed)),
		conns:  map[*faultyConn]struct{}{},
	}
}

// Name implements Transport.
func (t *Faulty) Name() string { return "faulty+" + t.Inner.Name() }

// SetFaults replaces the fault plan for frames sent from now on (the RNG
// stream continues; it is not reseeded).
func (t *Faulty) SetFaults(f Faults) {
	t.mu.Lock()
	t.faults = f
	t.mu.Unlock()
}

// SeverAll closes every live wrapped connection: the network partition /
// process-crash event. Listeners stay up, so new dials succeed.
func (t *Faulty) SeverAll() {
	for _, c := range t.snapshot() {
		c.Close()
	}
}

// BlackholeAll turns every live wrapped connection into an asymmetric
// partition: Recv blocks forever (no data, no close notification — the
// silent death of a vanished peer), while writes fail as a reset would.
// An idle connection therefore shows no symptom at all until something
// writes — which is precisely what a heartbeat probe exists to do. New
// dials are unaffected.
func (t *Faulty) BlackholeAll() {
	for _, c := range t.snapshot() {
		c.blackhole.Store(true)
	}
}

func (t *Faulty) snapshot() []*faultyConn {
	t.mu.Lock()
	out := make([]*faultyConn, 0, len(t.conns))
	for c := range t.conns {
		out = append(out, c)
	}
	t.mu.Unlock()
	return out
}

// Listen implements Transport; accepted connections are wrapped.
func (t *Faulty) Listen(addr string) (Listener, error) {
	l, err := t.Inner.Listen(addr)
	if err != nil {
		return nil, err
	}
	return &faultyListener{t: t, inner: l}, nil
}

// Dial implements Transport; the dialed connection is wrapped.
func (t *Faulty) Dial(addr string) (Conn, error) {
	c, err := t.Inner.Dial(addr)
	if err != nil {
		return nil, err
	}
	return t.wrap(c), nil
}

func (t *Faulty) wrap(inner Conn) *faultyConn {
	fc := &faultyConn{t: t, inner: inner}
	t.mu.Lock()
	t.conns[fc] = struct{}{}
	t.mu.Unlock()
	return fc
}

type faultyListener struct {
	t     *Faulty
	inner Listener
}

func (l *faultyListener) Accept() (Conn, error) {
	c, err := l.inner.Accept()
	if err != nil {
		return nil, err
	}
	return l.t.wrap(c), nil
}

func (l *faultyListener) Close() error { return l.inner.Close() }
func (l *faultyListener) Addr() string { return l.inner.Addr() }

// faultyConn applies the fault plan on the send side and passes Recv
// through. Fault decisions are drawn under the transport mutex so
// concurrent senders consume the shared RNG stream race-free.
type faultyConn struct {
	t         *Faulty
	inner     Conn
	sends     int64 // guarded by t.mu
	blackhole atomic.Bool
}

// decide draws this frame's fate. It returns the (possibly corrupted) frame
// to deliver, a pre-delivery delay, and whether to drop or sever instead.
func (c *faultyConn) decide(frame []byte) (out []byte, delay time.Duration, drop, sever bool) {
	t := c.t
	t.mu.Lock()
	defer t.mu.Unlock()
	f := t.faults
	c.sends++
	if f.SeverAfterSends > 0 && c.sends >= int64(f.SeverAfterSends) {
		t.stats.Severs++
		cFaultSevers.Inc()
		return nil, 0, false, true
	}
	if f.DropProb > 0 && t.rng.Float64() < f.DropProb {
		t.stats.Drops++
		cFaultDrops.Inc()
		return nil, 0, true, false
	}
	if f.DelayProb > 0 && t.rng.Float64() < f.DelayProb {
		t.stats.Delays++
		cFaultDelays.Inc()
		delay = f.Delay
	}
	out = frame
	if f.CorruptProb > 0 && len(frame) > 0 && t.rng.Float64() < f.CorruptProb {
		t.stats.Corrupts++
		cFaultCorrupts.Inc()
		out = append([]byte(nil), frame...)
		out[t.rng.Intn(len(out))] ^= 0xff
	}
	return out, delay, false, false
}

func (c *faultyConn) Send(frame []byte) error {
	if c.blackhole.Load() {
		return fmt.Errorf("%w: blackholed", ErrClosed)
	}
	out, delay, drop, sever := c.decide(frame)
	switch {
	case sever:
		c.inner.Close()
		return fmt.Errorf("%w: injected sever", ErrClosed)
	case drop:
		return nil
	}
	if delay > 0 {
		time.Sleep(delay)
	}
	return c.inner.Send(out)
}

func (c *faultyConn) Recv() ([]byte, error) {
	f, err := c.inner.Recv()
	if err == nil && c.blackhole.Load() {
		// Frames already in flight when the blackhole opened vanish too:
		// park until the connection is closed for real.
		ReleaseFrame(f)
		for {
			g, err := c.inner.Recv()
			if err != nil {
				return nil, err
			}
			ReleaseFrame(g)
		}
	}
	return f, err
}

func (c *faultyConn) Close() error {
	c.t.mu.Lock()
	delete(c.t.conns, c)
	c.t.mu.Unlock()
	return c.inner.Close()
}
