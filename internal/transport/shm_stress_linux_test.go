//go:build linux

package transport

import (
	"path/filepath"
	"runtime"
	"testing"
)

// TestSHMPadSkipHeaderRace hammers the pad-skip boundary of the shm
// ring: a stream of frames whose wire footprint (8-byte header + 9-byte
// payload + 7 pad bytes) forces the receiver's final head round-up on
// every frame. After consuming a payload the receiver rounds head over
// the sender's alignment pad before the sender has advanced tail across
// it, so head transiently exceeds tail by up to 7 — the header-wait
// comparison must treat that as "not ready" (signed), not as 2^64-7
// bytes available (unsigned). The unsigned form read a stale
// previous-lap byte as a length word roughly once per 100k frames under
// a multi-P scheduler; GOMAXPROCS is raised in-test because CI
// containers often pin it to 1, which almost never lands a preemption
// inside the window.
func TestSHMPadSkipHeaderRace(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	dc, ac := shmPair(t, filepath.Join(t.TempDir(), "ep"))
	defer dc.Close()
	defer ac.Close()
	rounds := 200000
	if testing.Short() {
		rounds = 50000
	}
	errc := make(chan error, 1)
	go func() {
		buf := make([]byte, 9)
		for i := 0; i < rounds; i++ {
			buf[0] = byte(i)
			if err := dc.Send(buf); err != nil {
				errc <- err
				return
			}
		}
		errc <- nil
	}()
	for i := 0; i < rounds; i++ {
		f, err := ac.Recv()
		if err != nil {
			t.Fatalf("recv %d: %v", i, err)
		}
		if len(f) != 9 {
			t.Fatalf("recv %d: frame len %d, want 9", i, len(f))
		}
		if f[0] != byte(i) {
			t.Fatalf("recv %d: first byte %d, want %d", i, f[0], byte(i))
		}
		ReleaseFrame(f)
	}
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
}
