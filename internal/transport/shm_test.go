//go:build unix

package transport

import (
	"encoding/binary"
	"errors"
	"os"
	"path/filepath"
	"syscall"
	"testing"
	"time"
)

// acceptAsync runs ln.Accept in a goroutine and returns the result chans.
func acceptAsync(ln Listener) (<-chan Conn, <-chan error) {
	cc, ec := make(chan Conn, 1), make(chan error, 1)
	go func() {
		c, err := ln.Accept()
		if err != nil {
			ec <- err
			return
		}
		cc <- c
	}()
	return cc, ec
}

// A ring file created at size 0 by a dialer that died before its
// Truncate must not be mmapped by the listener's scan (the first load
// past EOF would SIGBUS and kill the process); once provably dead it
// should be swept so it is not rescanned forever.
func TestSHMShortRingFileSkippedAndSwept(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "ep")
	ln, err := (SHM{}).Listen(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	// Dead-dialer remnant: exists in the directory, size 0, nobody holds
	// a lock on it.
	short := filepath.Join(dir, "c99999-deadbeef-1.ring")
	if err := os.WriteFile(short, nil, 0o600); err != nil {
		t.Fatal(err)
	}

	cc, ec := acceptAsync(ln)
	c, err := (SHM{}).Dial(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	select {
	case sc := <-cc:
		sc.Close()
	case err := <-ec:
		t.Fatal(err)
	case <-time.After(5 * time.Second):
		t.Fatal("Accept did not claim a healthy dial with a short file present")
	}
	// scan returns as soon as it claims a conn, so the short file may not
	// have been visited yet; one more pass must sweep it.
	l := ln.(*shmListener)
	l.mu.Lock()
	l.scan()
	l.mu.Unlock()
	if _, err := os.Stat(short); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("dead short ring file not swept by scan: stat err = %v", err)
	}
}

// A short file whose dialer is still alive (holds the shared flock,
// mid-init before Truncate) must be skipped without being marked seen,
// so the listener claims it once initialization completes.
func TestSHMMidInitRingRetried(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "ep")
	ln, err := (SHM{}).Listen(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	// Fake dialer paused between create+flock and truncate.
	path := filepath.Join(dir, "c1-00000001-1.ring")
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR|os.O_EXCL, 0o600)
	if err != nil {
		t.Fatal(err)
	}
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_SH); err != nil {
		t.Fatal(err)
	}

	cc, ec := acceptAsync(ln)
	// Give scan a few passes at the short file before finishing init.
	time.Sleep(50 * time.Millisecond)
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("live mid-init ring file was removed: %v", err)
	}
	if err := f.Truncate(shmFileSize); err != nil {
		t.Fatal(err)
	}
	mem, err := syscall.Mmap(int(f.Fd()), 0, shmFileSize, syscall.PROT_READ|syscall.PROT_WRITE, syscall.MAP_SHARED)
	if err != nil {
		t.Fatal(err)
	}
	binary.LittleEndian.PutUint64(mem[shmOffRingSize:], shmRingSize)
	shmU64(mem, shmOffMagic).Store(shmMagic)
	shmU32(mem, shmOffState).Store(shmStateReady)

	select {
	case sc := <-cc:
		sc.Close()
	case err := <-ec:
		t.Fatal(err)
	case <-time.After(5 * time.Second):
		t.Fatal("listener never claimed the ring after init completed (marked seen too early?)")
	}
	shmU32(mem, shmOffDialerEnd).Store(1)
	syscall.Munmap(mem)
	f.Close()
	os.Remove(path)
}

// The seen map must track the directory contents, not grow forever: once
// a connection's ring file is unlinked, the next scan forgets its name.
func TestSHMSeenPruned(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "ep")
	ln, err := (SHM{}).Listen(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	l := ln.(*shmListener)

	cc, ec := acceptAsync(ln)
	c, err := (SHM{}).Dial(dir)
	if err != nil {
		t.Fatal(err)
	}
	var sc Conn
	select {
	case sc = <-cc:
	case err := <-ec:
		t.Fatal(err)
	}
	c.Close()
	sc.Close() // second closer unlinks the ring file

	l.mu.Lock()
	defer l.mu.Unlock()
	if n := len(l.seen); n != 1 {
		t.Fatalf("seen has %d entries before prune, want 1", n)
	}
	l.scan()
	if n := len(l.seen); n != 0 {
		t.Fatalf("seen has %d entries after scan of empty dir, want 0", n)
	}
}

// If a dialer abandons (timeout) at the same moment the listener's scan
// wins the claim CAS, the dialer-end flag it sets before unmapping must
// make the accepted connection fail promptly instead of blocking in
// Recv forever.
func TestSHMAbandonedDialerFailsAcceptedConn(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "ep")
	ln, err := (SHM{}).Listen(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	// Fake dialer: full init, ready for claiming.
	path := filepath.Join(dir, "c2-00000002-1.ring")
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR|os.O_EXCL, 0o600)
	if err != nil {
		t.Fatal(err)
	}
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_SH); err != nil {
		t.Fatal(err)
	}
	if err := f.Truncate(shmFileSize); err != nil {
		t.Fatal(err)
	}
	mem, err := syscall.Mmap(int(f.Fd()), 0, shmFileSize, syscall.PROT_READ|syscall.PROT_WRITE, syscall.MAP_SHARED)
	if err != nil {
		t.Fatal(err)
	}
	binary.LittleEndian.PutUint64(mem[shmOffRingSize:], shmRingSize)
	shmU64(mem, shmOffMagic).Store(shmMagic)
	shmU32(mem, shmOffState).Store(shmStateReady)

	cc, ec := acceptAsync(ln)
	var sc Conn
	select {
	case sc = <-cc:
	case err := <-ec:
		t.Fatal(err)
	case <-time.After(5 * time.Second):
		t.Fatal("listener never claimed the ready ring")
	}
	defer sc.Close()

	// Abandon exactly as Dial's timeout path does, after the claim landed.
	shmU32(mem, shmOffDialerEnd).Store(1)
	syscall.Munmap(mem)
	f.Close()
	os.Remove(path)

	done := make(chan error, 1)
	go func() {
		_, err := sc.Recv()
		done <- err
	}()
	select {
	case err := <-done:
		if !errors.Is(err, ErrClosed) {
			t.Fatalf("Recv on abandoned conn: got %v, want ErrClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Recv blocked on a connection whose dialer abandoned")
	}
}
