package transport

// Tests for the Faulty wrapper and the transport error paths the
// supervision layer depends on: deterministic fault injection, severed
// and blackholed connections, Recv after a conn's own Close, and
// Recv-side oversized-frame rejection.

import (
	"bytes"
	"encoding/binary"
	"errors"
	"net"
	"testing"
	"time"
)

// faultyPair dials through a Faulty wrapper over InProc and returns both
// connection ends (client side wrapped, server side wrapped too: Listen
// and Dial both interpose).
func faultyPair(t *testing.T, f Faults) (*Faulty, Conn, Conn) {
	t.Helper()
	ft := NewFaulty(&InProc{}, f)
	l, err := ft.Listen("faulty")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	accepted := make(chan Conn, 1)
	go func() {
		c, err := l.Accept()
		if err == nil {
			accepted <- c
		}
	}()
	c, err := ft.Dial("faulty")
	if err != nil {
		t.Fatal(err)
	}
	srv := <-accepted
	t.Cleanup(func() { c.Close(); srv.Close() })
	return ft, c, srv
}

func TestFaultyPassThrough(t *testing.T) {
	// Zero faults: a transparent wrapper.
	_, c, srv := faultyPair(t, Faults{})
	if err := c.Send([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	got, err := srv.Recv()
	if err != nil || !bytes.Equal(got, []byte("hello")) {
		t.Fatalf("recv = %q, %v", got, err)
	}
}

func TestFaultyDeterministic(t *testing.T) {
	// Equal seeds and traffic order must inject identical faults — the
	// property that makes a chaos run reproducible. One sender, one
	// direction: determinism is promised for a fixed send order, and only
	// sends draw from the RNG.
	run := func() (FaultStats, []bool) {
		ft := NewFaulty(&InProc{}, Faults{Seed: 99, DropProb: 0.3})
		l, err := ft.Listen("det")
		if err != nil {
			t.Fatal(err)
		}
		defer l.Close()
		got := make(chan []bool, 1)
		go func() {
			c, err := l.Accept()
			if err != nil {
				got <- nil
				return
			}
			delivered := make([]bool, 40)
			for {
				f, err := c.Recv() // drains queued frames past peer close
				if err != nil {
					break
				}
				delivered[f[0]] = true
				ReleaseFrame(f)
			}
			got <- delivered
		}()
		c, err := ft.Dial("det")
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 40; i++ {
			if err := c.Send([]byte{byte(i)}); err != nil {
				t.Fatal(err)
			}
		}
		c.Close()
		delivered := <-got
		if delivered == nil {
			t.Fatal("accept failed")
		}
		return ft.Stats(), delivered
	}
	s1, d1 := run()
	s2, d2 := run()
	if s1.Drops == 0 {
		t.Fatal("no drops at 30% probability over 40 frames")
	}
	if s1 != s2 {
		t.Errorf("stats differ across identical runs: %+v vs %+v", s1, s2)
	}
	for i := range d1 {
		if d1[i] != d2[i] {
			t.Errorf("frame %d delivered=%v in run 1 but %v in run 2", i, d1[i], d2[i])
		}
	}
}

func TestFaultyCorruptFlipsOneByte(t *testing.T) {
	_, c, srv := faultyPair(t, Faults{CorruptProb: 1})
	orig := []byte("payload-under-test")
	if err := c.Send(orig); err != nil {
		t.Fatal(err)
	}
	got, err := srv.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(orig) {
		t.Fatalf("len = %d, want %d", len(got), len(orig))
	}
	diff := 0
	for i := range got {
		if got[i] != orig[i] {
			diff++
		}
	}
	if diff != 1 {
		t.Errorf("%d bytes differ, want exactly 1", diff)
	}
	// The caller's buffer must not be touched: corruption copies.
	if !bytes.Equal(orig, []byte("payload-under-test")) {
		t.Error("corruption mutated the sender's buffer")
	}
}

func TestFaultySendOnSeveredConnection(t *testing.T) {
	_, c, srv := faultyPair(t, Faults{SeverAfterSends: 1})
	// The first send trips the sever: the connection is closed under the
	// caller and the send fails like a reset.
	if err := c.Send([]byte("doomed")); !errors.Is(err, ErrClosed) {
		t.Fatalf("severed send err = %v, want ErrClosed", err)
	}
	// Both directions are dead.
	if err := c.Send([]byte("after")); !errors.Is(err, ErrClosed) {
		t.Errorf("send after sever = %v, want ErrClosed", err)
	}
	if _, err := srv.Recv(); !errors.Is(err, ErrClosed) {
		t.Errorf("peer recv after sever = %v, want ErrClosed", err)
	}
}

func TestFaultyBlackhole(t *testing.T) {
	ft, c, srv := faultyPair(t, Faults{})
	if err := c.Send([]byte("before")); err != nil {
		t.Fatal(err)
	}
	if f, err := srv.Recv(); err != nil || !bytes.Equal(f, []byte("before")) {
		t.Fatalf("pre-blackhole recv = %q, %v", f, err)
	}
	ft.BlackholeAll()
	// Writes fail like a reset; that is the only observable symptom.
	if err := c.Send([]byte("lost")); !errors.Is(err, ErrClosed) {
		t.Fatalf("blackholed send = %v, want ErrClosed", err)
	}
	// Reads hang (no data, no close notification) until a real Close.
	got := make(chan error, 1)
	go func() {
		_, err := srv.Recv()
		got <- err
	}()
	select {
	case err := <-got:
		t.Fatalf("blackholed recv returned early: %v", err)
	case <-time.After(50 * time.Millisecond):
	}
	srv.Close()
	select {
	case err := <-got:
		if !errors.Is(err, ErrClosed) {
			t.Errorf("recv after close = %v, want ErrClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("close did not unblock blackholed recv")
	}
}

func TestFaultySeverAllThenRedial(t *testing.T) {
	ft, c, _ := faultyPair(t, Faults{})
	ft.SeverAll()
	if err := c.Send([]byte("x")); !errors.Is(err, ErrClosed) {
		t.Fatalf("send after SeverAll = %v, want ErrClosed", err)
	}
	// Listeners survive SeverAll: new dials must succeed.
	c2, err := ft.Dial("faulty")
	if err != nil {
		t.Fatalf("redial after SeverAll: %v", err)
	}
	c2.Close()
}

func TestRecvAfterOwnClose(t *testing.T) {
	// A connection must fail its own reads after Close — the demux loop's
	// exit condition — on every transport.
	eachTransport(t, func(t *testing.T, tr Transport, addr string) {
		l, err := tr.Listen(addr)
		if err != nil {
			t.Fatal(err)
		}
		defer l.Close()
		go func() {
			if c, err := l.Accept(); err == nil {
				defer c.Close()
				_, _ = c.Recv() // hold the peer open
			}
		}()
		c, err := tr.Dial(l.Addr())
		if err != nil {
			t.Fatal(err)
		}
		c.Close()
		if _, err := c.Recv(); !errors.Is(err, ErrClosed) {
			t.Errorf("Recv after own Close = %v, want ErrClosed", err)
		}
	})
}

func TestTCPRecvRejectsOversizedHeader(t *testing.T) {
	// A malicious or corrupted length prefix over MaxFrame must be
	// rejected before any allocation, not trusted as an allocation size.
	l, err := TCP{}.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	accepted := make(chan Conn, 1)
	go func() {
		c, err := l.Accept()
		if err == nil {
			accepted <- c
		}
	}()
	raw, err := net.Dial("tcp", l.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	srv := <-accepted
	defer srv.Close()
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], MaxFrame+1)
	if _, err := raw.Write(hdr[:]); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Recv(); !errors.Is(err, ErrFrameTooBig) {
		t.Errorf("oversized header Recv = %v, want ErrFrameTooBig", err)
	}
}
