// This file holds the shared frame contract (errors, pooling, limits)
// plus the InProc and TCP backends; shm.go holds the shared-memory
// backend. Package-level documentation lives in doc.go.
package transport

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"syscall"

	"repro/internal/obs"
)

// Transport-level instruments, shared by both transports: frame and byte
// counters on each direction (payload bytes; length prefixes excluded),
// and the coalescer's flush-window occupancy histogram — the one number
// that says whether group commit is actually batching.
var (
	cFramesSent = obs.NewCounter("transport.frames_sent")
	cBytesSent  = obs.NewCounter("transport.bytes_sent")
	cFramesRecv = obs.NewCounter("transport.frames_recv")
	cBytesRecv  = obs.NewCounter("transport.bytes_recv")
	hFlushWin   = obs.NewHistogram("transport.tcp.flush_window_frames")
)

// TCP connections tally frames/bytes in per-connection cells instead of
// the shared counters above: the tally sites already hold a per-conn lock
// (wmu on Send, recvMu on Recv), so a single-writer atomic Store is enough
// for visibility and the hot path pays no read-modify-write. The cells
// surface through additive func-backed registry counters — summed only
// when a snapshot is taken — under the same names the in-process transport
// feeds directly (the registry adds both sources together).
const (
	statFramesSent = iota
	statBytesSent
	statFramesRecv
	statBytesRecv
	numConnStats
)

var tcpStats = struct {
	mu      sync.Mutex
	conns   map[*tcpConn]struct{}
	retired [numConnStats]uint64 // tallies of closed connections
}{conns: map[*tcpConn]struct{}{}}

func init() {
	for i, name := range [numConnStats]string{
		statFramesSent: "transport.frames_sent",
		statBytesSent:  "transport.bytes_sent",
		statFramesRecv: "transport.frames_recv",
		statBytesRecv:  "transport.bytes_recv",
	} {
		obs.AddCounterFunc(name, func() uint64 { return tcpStatTotal(i) })
	}
}

func tcpStatTotal(i int) uint64 {
	tcpStats.mu.Lock()
	defer tcpStats.mu.Unlock()
	total := tcpStats.retired[i]
	for c := range tcpStats.conns {
		total += c.stats[i].Load()
	}
	return total
}

// Errors reported by transports.
var (
	ErrClosed      = errors.New("transport: connection closed")
	ErrNoListener  = errors.New("transport: no listener at address")
	ErrAddrInUse   = errors.New("transport: address already in use")
	ErrFrameTooBig = errors.New("transport: frame exceeds limit")

	// ErrPeerDead reports that the process on the other end of a
	// connection died without closing it — detected by the shm backend's
	// flock liveness probe when a blocked Send/Recv would otherwise wait
	// forever on a ring no one will ever advance. It wraps ErrClosed, so
	// existing errors.Is(err, ErrClosed) checks (and orb.Classify's
	// retryable classification) see it as a connection-level failure.
	ErrPeerDead = fmt.Errorf("%w: peer process died", ErrClosed)
)

// MaxFrame bounds a single message frame (64 MiB), protecting against
// corrupt length prefixes.
const MaxFrame = 64 << 20

// Conn is a bidirectional, message-oriented connection.
type Conn interface {
	// Send transmits one frame. Send is safe for concurrent use; frames
	// from concurrent senders are delivered whole, in some serial order.
	// Implementations do not retain frame past return: the caller may
	// reuse its backing array as soon as Send returns.
	Send(frame []byte) error
	// Recv blocks for the next frame. The returned slice is owned by the
	// caller; callers that fully consume a frame may hand it back with
	// ReleaseFrame to keep the receive path allocation-free.
	Recv() ([]byte, error)
	// Close releases the connection; pending Recv calls fail with
	// ErrClosed (or io.EOF mapped to ErrClosed).
	Close() error
}

// Listener accepts inbound connections.
type Listener interface {
	Accept() (Conn, error)
	Close() error
	// Addr is the address clients dial.
	Addr() string
}

// Transport creates listeners and dials connections.
type Transport interface {
	Listen(addr string) (Listener, error)
	Dial(addr string) (Conn, error)
	Name() string
}

// --- pooled receive frames ---

// maxPooledFrame caps the capacity of buffers kept in the frame pool so one
// giant transfer cannot pin memory for the rest of the run (mirrors the ORB
// encoder pool's cap).
const maxPooledFrame = 1 << 20

// The frame pool recycles payload buffers between Recv and ReleaseFrame.
// Buffers travel inside *[]byte boxes; grabFrame strips the box off and
// parks it in boxPool so that at steady state neither Get nor Put
// allocates.
var (
	framePool sync.Pool // holds *[]byte boxes with spare capacity
	boxPool   = sync.Pool{New: func() any { return new([]byte) }}
)

// grabFrame returns a length-n buffer, reusing pooled storage when it fits.
func grabFrame(n int) []byte {
	if p, ok := framePool.Get().(*[]byte); ok {
		b := *p
		*p = nil
		boxPool.Put(p)
		if cap(b) >= n {
			return b[:n]
		}
	}
	if n > maxPooledFrame {
		return make([]byte, n)
	}
	c := 512
	for c < n {
		c <<= 1
	}
	return make([]byte, n, c)
}

// ReleaseFrame returns a frame obtained from Conn.Recv to the package pool.
// The caller must not touch the frame (or anything aliasing it) afterwards.
// Releasing is optional — an unreleased frame is simply garbage-collected —
// but consumers that copy out everything they need (the ORB's decoder
// copies every value) run allocation-free at steady state by releasing.
func ReleaseFrame(f []byte) {
	if cap(f) == 0 || cap(f) > maxPooledFrame {
		return
	}
	p := boxPool.Get().(*[]byte)
	*p = f[:0]
	framePool.Put(p)
}

// --- in-process transport ---

// InProc is an in-process loopback transport. Addresses are arbitrary
// strings scoped to the InProc instance. The zero value is ready to use.
type InProc struct {
	mu        sync.Mutex
	listeners map[string]*inprocListener
}

// Name implements Transport.
func (t *InProc) Name() string { return "inproc" }

// Listen implements Transport.
func (t *InProc) Listen(addr string) (Listener, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.listeners == nil {
		t.listeners = map[string]*inprocListener{}
	}
	if _, dup := t.listeners[addr]; dup {
		return nil, fmt.Errorf("%w: %q", ErrAddrInUse, addr)
	}
	l := &inprocListener{t: t, addr: addr, backlog: make(chan *inprocConn, 16)}
	t.listeners[addr] = l
	return l, nil
}

// Dial implements Transport.
func (t *InProc) Dial(addr string) (Conn, error) {
	t.mu.Lock()
	l, ok := t.listeners[addr]
	t.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoListener, addr)
	}
	client, server := pipePair()
	// The backlog handoff is guarded by the listener mutex: Close closes
	// the backlog channel under the same mutex after setting closed, so a
	// dial racing a close observes ErrClosed instead of panicking on a
	// send to a closed channel.
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil, fmt.Errorf("%w: %q", ErrClosed, addr)
	}
	select {
	case l.backlog <- server:
		l.mu.Unlock()
		return client, nil
	default:
		l.mu.Unlock()
		return nil, fmt.Errorf("transport: %q backlog full", addr)
	}
}

type inprocListener struct {
	t       *InProc
	addr    string
	mu      sync.Mutex
	closed  bool
	backlog chan *inprocConn
}

func (l *inprocListener) Accept() (Conn, error) {
	c, ok := <-l.backlog
	if !ok {
		return nil, ErrClosed
	}
	return c, nil
}

func (l *inprocListener) Close() error {
	l.t.mu.Lock()
	delete(l.t.listeners, l.addr)
	l.t.mu.Unlock()
	l.mu.Lock()
	first := !l.closed
	if first {
		l.closed = true
		close(l.backlog)
	}
	l.mu.Unlock()
	if first {
		// Close queued, never-accepted connections so their dialers see
		// ErrClosed instead of hanging on Recv.
		for c := range l.backlog {
			c.Close()
		}
	}
	return nil
}

func (l *inprocListener) Addr() string { return l.addr }

// inprocConn is one direction pair of buffered frame channels.
type inprocConn struct {
	send   chan<- []byte
	recv   <-chan []byte
	closed chan struct{}
	peer   *inprocConn
	once   sync.Once
}

func pipePair() (*inprocConn, *inprocConn) {
	ab := make(chan []byte, 64)
	ba := make(chan []byte, 64)
	a := &inprocConn{send: ab, recv: ba, closed: make(chan struct{})}
	b := &inprocConn{send: ba, recv: ab, closed: make(chan struct{})}
	a.peer, b.peer = b, a
	return a, b
}

func (c *inprocConn) Send(frame []byte) error {
	if len(frame) > MaxFrame {
		return fmt.Errorf("%w: %d bytes", ErrFrameTooBig, len(frame))
	}
	// An already-closed connection must refuse writes deterministically:
	// in the blocking select below the buffered channel send can stay
	// ready after close, and Go picks among ready cases at random — a
	// severed connection would then accept a frame now and then, which
	// would blind failure detectors (heartbeats) that rely on the write
	// error.
	select {
	case <-c.closed:
		return ErrClosed
	case <-c.peer.closed:
		return ErrClosed
	default:
	}
	// Copy before handing off: Conn.Send promises the caller may reuse the
	// frame as soon as Send returns (the ORB pools its encode buffers), but
	// a channel retains the slice until the peer receives it. The copy
	// lives in a pooled buffer the receiver can hand back with
	// ReleaseFrame.
	owned := grabFrame(len(frame))
	copy(owned, frame)
	select {
	case <-c.closed:
		ReleaseFrame(owned)
		return ErrClosed
	case <-c.peer.closed:
		ReleaseFrame(owned)
		return ErrClosed
	case c.send <- owned:
		cFramesSent.Inc()
		cBytesSent.Add(uint64(len(frame)))
		return nil
	}
}

func (c *inprocConn) Recv() ([]byte, error) {
	select {
	case f := <-c.recv:
		cFramesRecv.Inc()
		cBytesRecv.Add(uint64(len(f)))
		return f, nil
	case <-c.closed:
		// Drain anything already queued before reporting closure.
		select {
		case f := <-c.recv:
			cFramesRecv.Inc()
			cBytesRecv.Add(uint64(len(f)))
			return f, nil
		default:
			return nil, ErrClosed
		}
	case <-c.peer.closed:
		select {
		case f := <-c.recv:
			cFramesRecv.Inc()
			cBytesRecv.Add(uint64(len(f)))
			return f, nil
		default:
			return nil, ErrClosed
		}
	}
}

func (c *inprocConn) Close() error {
	c.once.Do(func() { close(c.closed) })
	return nil
}

// --- TCP transport ---

// TCP is a Transport over real sockets with 4-byte big-endian length
// framing. Addresses are host:port; Listen with ":0" picks a free port
// (recover it from Listener.Addr).
type TCP struct{}

// Name implements Transport.
func (TCP) Name() string { return "tcp" }

// Listen implements Transport. A port already bound surfaces as
// ErrAddrInUse, matching the other backends.
func (TCP) Listen(addr string) (Listener, error) {
	nl, err := net.Listen("tcp", addr)
	if err != nil {
		if errors.Is(err, syscall.EADDRINUSE) {
			return nil, fmt.Errorf("%w: %q", ErrAddrInUse, addr)
		}
		return nil, err
	}
	return tcpListener{nl}, nil
}

// Dial implements Transport. A refused connection surfaces as
// ErrNoListener, matching the other backends.
func (TCP) Dial(addr string) (Conn, error) {
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		if errors.Is(err, syscall.ECONNREFUSED) {
			return nil, fmt.Errorf("%w: %q", ErrNoListener, addr)
		}
		return nil, err
	}
	return newTCPConn(nc), nil
}

type tcpListener struct{ nl net.Listener }

func (l tcpListener) Accept() (Conn, error) {
	nc, err := l.nl.Accept()
	if err != nil {
		// A listener closed mid-Accept reports ErrClosed like the other
		// backends, not net's "use of closed network connection".
		return nil, mapErr(err)
	}
	return newTCPConn(nc), nil
}

func (l tcpListener) Close() error { return l.nl.Close() }
func (l tcpListener) Addr() string { return l.nl.Addr().String() }

// coalesceCutoff is the largest frame copied into the shared write buffer.
// Larger frames are queued as their own iovec and written zero-copy; the
// copy would cost more than the extra iovec saves.
const coalesceCutoff = 4 << 10

// CoalesceCutoff exports the coalescer's copy/zero-copy boundary: frames
// strictly larger than this ride the zero-copy writev path. Bulk-transfer
// layers (repro/internal/dist/collective) size their chunks above it so
// every chunk frame is written without a coalescing copy.
const CoalesceCutoff = coalesceCutoff

// MaxFlushWindow exports the adaptive flush window's frame cap. Bulk
// layers derive their credit-based in-flight window from it
// (MaxFlushWindow × CoalesceCutoff bytes by default), keeping the amount
// of data in flight consistent with what the coalescer is sized to batch.
const MaxFlushWindow = maxFlushWindow

// recvBufSize sizes the buffered reader: big enough that a whole flush
// window of small frames (header + payload) arrives in one read syscall.
const recvBufSize = 64 << 10

// maxFlushWindow caps how many frames a flusher gathers before it stops
// yielding and writes: deep enough to batch every in-flight call of a busy
// multiplexed connection, small enough that a sustained stream of senders
// cannot postpone the flush unboundedly.
const maxFlushWindow = 64

// wseg is one queued write segment: a [lo,hi) window of the shared
// coalesce buffer, or (ref != nil) a zero-copy reference to a large frame.
type wseg struct {
	lo, hi int
	ref    []byte
}

// tcpConn frames messages over a net.Conn.
//
// The write side is a group-commit coalescer: Send queues its frame
// (4-byte length header always goes through the coalesce buffer; small
// payloads are copied after it, large payloads are referenced zero-copy)
// and the first sender to find no flush in progress becomes the leader,
// flushing windows of queued frames with one writev each until the queue is
// empty. Frames queued by concurrent senders while a window is being
// written batch into the next writev. Senders of small (copied) frames
// return as soon as their frame is queued — the leader owns the copy — so
// a pipelined burst pays one sleep/wake pair per window, not per frame;
// write failures are sticky and surface on later Sends and on the peer's
// read side. Senders of zero-copy frames wait until their segment has been
// written, so the referenced buffer never outlives the call.
type tcpConn struct {
	c      net.Conn
	br     *bufio.Reader
	recvMu sync.Mutex

	wmu       sync.Mutex
	wcond     *sync.Cond
	flushing  bool   // a flusher's writev is in progress
	nq, ndone uint64 // frames queued / frames flushed
	werr      error  // sticky write-side error
	wbuf      []byte // coalesced bytes awaiting flush
	wsegs     []wseg // flush order over wbuf windows and zero-copy refs
	spareBuf  []byte // double buffers recycled between flushes
	spareSegs []wseg
	iov       net.Buffers // flusher-owned iovec scratch

	// stats cells are written only under the respective lock (wmu for the
	// sent pair, recvMu for the recv pair); atomic Stores make them safe
	// to sum from tcpStatTotal without taking either.
	stats [numConnStats]atomic.Uint64
}

func newTCPConn(nc net.Conn) *tcpConn {
	c := &tcpConn{c: nc, br: bufio.NewReaderSize(nc, recvBufSize)}
	c.wcond = sync.NewCond(&c.wmu)
	tcpStats.mu.Lock()
	tcpStats.conns[c] = struct{}{}
	tcpStats.mu.Unlock()
	return c
}

// bump adds n to a stats cell. The caller holds the lock that serializes
// every writer of that cell, so a plain load + atomic store suffices.
func (c *tcpConn) bump(i int, n uint64) {
	c.stats[i].Store(c.stats[i].Load() + n)
}

// retireStats folds a closing connection's tallies into the package-wide
// retired totals so the func-backed counters stay monotonic after the
// conn is gone. Idempotent; a count landing concurrently with retirement
// may be dropped, which a metrics read tolerates.
func (c *tcpConn) retireStats() {
	tcpStats.mu.Lock()
	if _, live := tcpStats.conns[c]; live {
		delete(tcpStats.conns, c)
		for i := range c.stats {
			tcpStats.retired[i] += c.stats[i].Load()
		}
	}
	tcpStats.mu.Unlock()
}

func (c *tcpConn) Send(frame []byte) error {
	if len(frame) > MaxFrame {
		return fmt.Errorf("%w: %d bytes", ErrFrameTooBig, len(frame))
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(frame)))

	c.wmu.Lock()
	if c.werr != nil {
		err := c.werr
		c.wmu.Unlock()
		return err
	}
	if obs.MetricsEnabled() {
		c.bump(statFramesSent, 1)
		c.bump(statBytesSent, uint64(len(frame)))
	}
	c.appendSmall(hdr[:])
	small := len(frame) <= coalesceCutoff
	if small {
		c.appendSmall(frame)
	} else {
		c.wsegs = append(c.wsegs, wseg{ref: frame})
	}
	return c.commitLocked(small)
}

// commitLocked finishes a queued send: accounts the frame, elects or
// defers to the flush leader, and returns the write-side verdict. Called
// with wmu held and the frame's segments already appended; returns with
// wmu released.
func (c *tcpConn) commitLocked(small bool) error {
	c.nq++
	mySeq := c.nq
	switch {
	case !c.flushing:
		// Become the leader: flush until the queue is empty, covering
		// frames other senders enqueue meanwhile (they return without
		// waiting, so nobody else will).
		c.flushing = true
		c.flushLoop()
	case !small:
		// Zero-copy frames stay referenced until written; the caller may
		// recycle the buffer as soon as Send returns, so wait out the
		// leader's flush of our segment.
		for c.ndone < mySeq && c.werr == nil {
			c.wcond.Wait()
		}
	default:
		// Small frame, leader active: the copy in the coalesce buffer is
		// the leader's to write. Returning now saves a sleep/wake pair per
		// frame; a write failure surfaces as the sticky error on later
		// operations and as connection loss on the read side.
	}
	var err error
	if c.ndone < mySeq {
		err = c.werr // nil for a small frame the leader has yet to write
	}
	c.wmu.Unlock()
	return err
}

// DrainWrites implements WriteDrainer: block until every frame queued
// before the call has been written to the socket or the write side
// failed. Safe to call concurrently with senders; frames queued after
// the call may or may not be covered.
func (c *tcpConn) DrainWrites() {
	c.wmu.Lock()
	for (c.flushing || c.ndone < c.nq) && c.werr == nil {
		c.wcond.Wait()
	}
	c.wmu.Unlock()
}

// flushLoop runs the group-commit leader: flush windows until the queue is
// empty or the write side fails. Called with wmu held and the flushing flag
// claimed; returns with wmu held and the flag released.
//
// Before each writev the leader yields while the window keeps growing:
// senders that are already runnable (e.g. just woken by a reply batch) get
// to queue their frames into the same writev. Without the yield, a fast
// non-blocking writev on a single P finishes before any other sender runs,
// and the coalescer degenerates to one syscall per frame. The window is
// bounded so a steady stream of senders cannot postpone the flush
// indefinitely, and a lone sender pays exactly one yield.
func (c *tcpConn) flushLoop() {
	for c.werr == nil && c.ndone < c.nq {
		for {
			prev := c.nq
			c.wmu.Unlock()
			runtime.Gosched()
			c.wmu.Lock()
			if c.nq == prev || c.nq-c.ndone >= maxFlushWindow {
				break
			}
		}
		c.flush()
	}
	c.flushing = false
	// flush broadcasts while the flag is still claimed; wake DrainWrites
	// waiters that need to observe the leader retiring.
	c.wcond.Broadcast()
}

// appendSmall copies b into the coalesce buffer, merging into the previous
// segment when that segment is also a buffer window (consecutive small
// frames become one iovec).
func (c *tcpConn) appendSmall(b []byte) {
	lo := len(c.wbuf)
	c.wbuf = append(c.wbuf, b...)
	if n := len(c.wsegs); n > 0 && c.wsegs[n-1].ref == nil {
		c.wsegs[n-1].hi = len(c.wbuf)
		return
	}
	c.wsegs = append(c.wsegs, wseg{lo: lo, hi: len(c.wbuf)})
}

// flush takes ownership of the queued segments and writes them with one
// writev. Called with wmu held and flushing claimed by the caller; the lock
// is released around the syscall so senders can queue the next window, and
// reacquired before returning. The flushing flag stays claimed throughout —
// only flushLoop releases it, after its final window — so a sender that
// observes an unlocked wmu mid-flush can never become a second leader and
// race writes to the socket.
func (c *tcpConn) flush() {
	buf, segs, top := c.wbuf, c.wsegs, c.nq
	window := top - c.ndone // frames this writev covers (single flusher: stable)
	c.wbuf, c.wsegs = c.spareBuf, c.spareSegs
	c.spareBuf, c.spareSegs = nil, nil
	c.wmu.Unlock()
	hFlushWin.Observe(window)

	c.iov = c.iov[:0]
	for _, s := range segs {
		if s.ref != nil {
			c.iov = append(c.iov, s.ref)
		} else {
			c.iov = append(c.iov, buf[s.lo:s.hi])
		}
	}
	iov := c.iov
	_, err := iov.WriteTo(c.c)
	clear(c.iov) // drop payload references; pooled arrays must not stay pinned

	c.wmu.Lock()
	if top > c.ndone {
		c.ndone = top
	}
	if err != nil && c.werr == nil {
		c.werr = mapErr(err)
	}
	if cap(buf) <= maxPooledFrame {
		c.spareBuf = buf[:0]
	}
	c.spareSegs = segs[:0]
	c.wcond.Broadcast()
}

func (c *tcpConn) Recv() ([]byte, error) {
	c.recvMu.Lock()
	defer c.recvMu.Unlock()
	var hdr [4]byte
	// Through the buffered reader, header and payload usually arrive with
	// a single read syscall (often along with the next frames of the same
	// flush window).
	if _, err := io.ReadFull(c.br, hdr[:]); err != nil {
		return nil, mapErr(err)
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrame {
		return nil, fmt.Errorf("%w: %d bytes", ErrFrameTooBig, n)
	}
	frame := grabFrame(int(n))
	if _, err := io.ReadFull(c.br, frame); err != nil {
		return nil, mapErr(err)
	}
	if obs.MetricsEnabled() {
		c.bump(statFramesRecv, 1)
		c.bump(statBytesRecv, uint64(n))
	}
	return frame, nil
}

func (c *tcpConn) Close() error {
	c.retireStats()
	return c.c.Close()
}

func mapErr(err error) error {
	if err == nil {
		return nil
	}
	if errors.Is(err, io.EOF) || errors.Is(err, net.ErrClosed) || errors.Is(err, io.ErrUnexpectedEOF) {
		return ErrClosed
	}
	return err
}
