// Package transport provides byte-level message transports for the CCA
// reproduction's distributed connections: the paper's §6.1 "connections
// through proxy intermediaries enabling distributed object interactions"
// and §2.2's dynamically attached remote visualization.
//
// Two transports are provided: an in-process loopback (for deterministic
// tests and the in-address-space ORB baseline) and TCP over net (for
// genuinely remote components). Both carry length-prefixed frames.
package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
)

// Errors reported by transports.
var (
	ErrClosed      = errors.New("transport: connection closed")
	ErrNoListener  = errors.New("transport: no listener at address")
	ErrAddrInUse   = errors.New("transport: address already in use")
	ErrFrameTooBig = errors.New("transport: frame exceeds limit")
)

// MaxFrame bounds a single message frame (64 MiB), protecting against
// corrupt length prefixes.
const MaxFrame = 64 << 20

// Conn is a bidirectional, message-oriented connection.
type Conn interface {
	// Send transmits one frame. Implementations do not retain frame: the
	// caller may reuse its backing array as soon as Send returns.
	Send(frame []byte) error
	// Recv blocks for the next frame.
	Recv() ([]byte, error)
	// Close releases the connection; pending Recv calls fail with
	// ErrClosed (or io.EOF mapped to ErrClosed).
	Close() error
}

// Listener accepts inbound connections.
type Listener interface {
	Accept() (Conn, error)
	Close() error
	// Addr is the address clients dial.
	Addr() string
}

// Transport creates listeners and dials connections.
type Transport interface {
	Listen(addr string) (Listener, error)
	Dial(addr string) (Conn, error)
	Name() string
}

// --- in-process transport ---

// InProc is an in-process loopback transport. Addresses are arbitrary
// strings scoped to the InProc instance. The zero value is ready to use.
type InProc struct {
	mu        sync.Mutex
	listeners map[string]*inprocListener
}

// Name implements Transport.
func (t *InProc) Name() string { return "inproc" }

// Listen implements Transport.
func (t *InProc) Listen(addr string) (Listener, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.listeners == nil {
		t.listeners = map[string]*inprocListener{}
	}
	if _, dup := t.listeners[addr]; dup {
		return nil, fmt.Errorf("%w: %q", ErrAddrInUse, addr)
	}
	l := &inprocListener{t: t, addr: addr, backlog: make(chan *inprocConn, 16)}
	t.listeners[addr] = l
	return l, nil
}

// Dial implements Transport.
func (t *InProc) Dial(addr string) (Conn, error) {
	t.mu.Lock()
	l, ok := t.listeners[addr]
	t.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoListener, addr)
	}
	client, server := pipePair()
	select {
	case l.backlog <- server:
		return client, nil
	default:
		return nil, fmt.Errorf("transport: %q backlog full", addr)
	}
}

type inprocListener struct {
	t       *InProc
	addr    string
	backlog chan *inprocConn
	once    sync.Once
}

func (l *inprocListener) Accept() (Conn, error) {
	c, ok := <-l.backlog
	if !ok {
		return nil, ErrClosed
	}
	return c, nil
}

func (l *inprocListener) Close() error {
	l.once.Do(func() {
		l.t.mu.Lock()
		delete(l.t.listeners, l.addr)
		l.t.mu.Unlock()
		close(l.backlog)
	})
	return nil
}

func (l *inprocListener) Addr() string { return l.addr }

// inprocConn is one direction pair of buffered frame channels.
type inprocConn struct {
	send   chan<- []byte
	recv   <-chan []byte
	closed chan struct{}
	peer   *inprocConn
	once   sync.Once
}

func pipePair() (*inprocConn, *inprocConn) {
	ab := make(chan []byte, 64)
	ba := make(chan []byte, 64)
	a := &inprocConn{send: ab, recv: ba, closed: make(chan struct{})}
	b := &inprocConn{send: ba, recv: ab, closed: make(chan struct{})}
	a.peer, b.peer = b, a
	return a, b
}

func (c *inprocConn) Send(frame []byte) error {
	if len(frame) > MaxFrame {
		return fmt.Errorf("%w: %d bytes", ErrFrameTooBig, len(frame))
	}
	// Copy before handing off: Conn.Send promises the caller may reuse the
	// frame as soon as Send returns (the ORB pools its encode buffers), but
	// a channel retains the slice until the peer receives it.
	owned := append([]byte(nil), frame...)
	select {
	case <-c.closed:
		return ErrClosed
	case <-c.peer.closed:
		return ErrClosed
	case c.send <- owned:
		return nil
	}
}

func (c *inprocConn) Recv() ([]byte, error) {
	select {
	case f := <-c.recv:
		return f, nil
	case <-c.closed:
		// Drain anything already queued before reporting closure.
		select {
		case f := <-c.recv:
			return f, nil
		default:
			return nil, ErrClosed
		}
	case <-c.peer.closed:
		select {
		case f := <-c.recv:
			return f, nil
		default:
			return nil, ErrClosed
		}
	}
}

func (c *inprocConn) Close() error {
	c.once.Do(func() { close(c.closed) })
	return nil
}

// --- TCP transport ---

// TCP is a Transport over real sockets with 4-byte big-endian length
// framing. Addresses are host:port; Listen with ":0" picks a free port
// (recover it from Listener.Addr).
type TCP struct{}

// Name implements Transport.
func (TCP) Name() string { return "tcp" }

// Listen implements Transport.
func (TCP) Listen(addr string) (Listener, error) {
	nl, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	return tcpListener{nl}, nil
}

// Dial implements Transport.
func (TCP) Dial(addr string) (Conn, error) {
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &tcpConn{c: nc}, nil
}

type tcpListener struct{ nl net.Listener }

func (l tcpListener) Accept() (Conn, error) {
	nc, err := l.nl.Accept()
	if err != nil {
		return nil, err
	}
	return &tcpConn{c: nc}, nil
}

func (l tcpListener) Close() error { return l.nl.Close() }
func (l tcpListener) Addr() string { return l.nl.Addr().String() }

type tcpConn struct {
	c      net.Conn
	sendMu sync.Mutex
	recvMu sync.Mutex
}

func (c *tcpConn) Send(frame []byte) error {
	if len(frame) > MaxFrame {
		return fmt.Errorf("%w: %d bytes", ErrFrameTooBig, len(frame))
	}
	c.sendMu.Lock()
	defer c.sendMu.Unlock()
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(frame)))
	// One writev for header+payload: a single syscall, and no risk of the
	// kernel flushing a 4-byte segment before the payload lands.
	bufs := net.Buffers{hdr[:], frame}
	_, err := bufs.WriteTo(c.c)
	return mapErr(err)
}

func (c *tcpConn) Recv() ([]byte, error) {
	c.recvMu.Lock()
	defer c.recvMu.Unlock()
	var hdr [4]byte
	if _, err := io.ReadFull(c.c, hdr[:]); err != nil {
		return nil, mapErr(err)
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrame {
		return nil, fmt.Errorf("%w: %d bytes", ErrFrameTooBig, n)
	}
	frame := make([]byte, n)
	if _, err := io.ReadFull(c.c, frame); err != nil {
		return nil, mapErr(err)
	}
	return frame, nil
}

func (c *tcpConn) Close() error { return c.c.Close() }

func mapErr(err error) error {
	if err == nil {
		return nil
	}
	if errors.Is(err, io.EOF) || errors.Is(err, net.ErrClosed) || errors.Is(err, io.ErrUnexpectedEOF) {
		return ErrClosed
	}
	return err
}
