// Shared reference-counted payload buffers for server-side fan-out:
// broadcast layers (repro/internal/dist/collective's epoch cache) pack a
// payload once and send the same bytes to many connections without
// per-subscriber copies. transport.go holds the backends; the TCP
// coalescer implements the zero-copy path natively, every other backend
// falls back to a single pooled copy.
package transport

import (
	"encoding/binary"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/obs"
)

var (
	cSharedSends    = obs.NewCounter("transport.shared_sends")
	cSharedZeroCopy = obs.NewCounter("transport.shared_sends_zerocopy")
)

// SharedBuf is an immutable, reference-counted payload buffer. A producer
// allocates it once (NewSharedBuf), fills Bytes, and hands it to any
// number of concurrent senders; each sender Retains before use and
// Releases after, and the storage returns to the frame pool when the last
// reference drops. The bytes must not be mutated after the first send —
// senders on the zero-copy path reference them directly from writev.
type SharedBuf struct {
	b    []byte
	refs atomic.Int64
}

var sharedBufPool = sync.Pool{New: func() any { return new(SharedBuf) }}

// NewSharedBuf returns a buffer of length n holding one reference, owned
// by the caller. Storage is recycled through the package frame pool when
// it fits (same cap as Recv frames).
func NewSharedBuf(n int) *SharedBuf {
	s := sharedBufPool.Get().(*SharedBuf)
	s.b = grabFrame(n)
	s.refs.Store(1)
	return s
}

// Bytes returns the payload. The slice is valid until the caller's
// reference is released and must not be mutated once any send has seen it.
func (s *SharedBuf) Bytes() []byte { return s.b }

// Len returns the payload length.
func (s *SharedBuf) Len() int { return len(s.b) }

// Retain adds a reference. Each holder that may outlive the current
// caller's reference must take its own.
func (s *SharedBuf) Retain() {
	if s.refs.Add(1) <= 1 {
		panic("transport: SharedBuf.Retain after release")
	}
}

// Release drops one reference; the last drop recycles the storage. The
// caller must not touch Bytes afterwards.
func (s *SharedBuf) Release() {
	n := s.refs.Add(-1)
	if n > 0 {
		return
	}
	if n < 0 {
		panic("transport: SharedBuf over-released")
	}
	ReleaseFrame(s.b)
	s.b = nil
	sharedBufPool.Put(s)
}

// SharedSender is implemented by connections with a native splice path
// for shared payloads. SendShared must behave like Send of hdr+payload
// concatenated, without retaining the payload past return.
type SharedSender interface {
	SendShared(hdr []byte, payload *SharedBuf) error
}

// WriteDrainer is implemented by connections that buffer writes. It
// blocks until every previously queued frame has reached the socket (or
// the write side failed); graceful server shutdown drains before closing
// so in-flight replies are not torn off mid-flush.
type WriteDrainer interface {
	DrainWrites()
}

// SendShared sends one frame whose payload is hdr followed by the shared
// buffer's bytes. The caller keeps its reference across the call and may
// release it as soon as SendShared returns; implementations either copy
// or finish their zero-copy write before returning. The header (typically
// a small per-request prefix: correlation IDs, CDR tags) is always
// copied.
func SendShared(c Conn, hdr []byte, payload *SharedBuf) error {
	if ss, ok := c.(SharedSender); ok {
		return ss.SendShared(hdr, payload)
	}
	f := grabFrame(len(hdr) + payload.Len())
	n := copy(f, hdr)
	copy(f[n:], payload.Bytes())
	err := c.Send(f)
	ReleaseFrame(f)
	if err == nil && obs.MetricsEnabled() {
		cSharedSends.Inc()
	}
	return err
}

// SendShared implements SharedSender on the TCP coalescer: the length
// prefix and header ride the coalesce buffer, the payload is appended as
// its own zero-copy iovec when it clears the cutoff. The zero-copy sender
// waits until its segment is flushed (exactly like Send's large-frame
// path), so the shared bytes are never referenced after return.
func (c *tcpConn) SendShared(hdr []byte, payload *SharedBuf) error {
	total := len(hdr) + payload.Len()
	if total > MaxFrame {
		return fmt.Errorf("%w: %d bytes", ErrFrameTooBig, total)
	}
	var lp [4]byte
	binary.BigEndian.PutUint32(lp[:], uint32(total))

	c.wmu.Lock()
	if c.werr != nil {
		err := c.werr
		c.wmu.Unlock()
		return err
	}
	if obs.MetricsEnabled() {
		c.bump(statFramesSent, 1)
		c.bump(statBytesSent, uint64(total))
		cSharedSends.Inc()
	}
	c.appendSmall(lp[:])
	c.appendSmall(hdr)
	body := payload.Bytes()
	small := len(body) <= coalesceCutoff
	if small {
		c.appendSmall(body)
	} else {
		c.wsegs = append(c.wsegs, wseg{ref: body})
		if obs.MetricsEnabled() {
			cSharedZeroCopy.Inc()
		}
	}
	return c.commitLocked(small)
}
