package transport

import (
	"runtime"
	"time"
)

// waiter is the shared-memory transport's futex-free progressive waiter.
// Ring cursors live in a file-backed mmap shared with another process, so
// there is no channel, futex, or condvar to block on; a waiter instead
// escalates through three phases, re-checking its condition between
// pauses:
//
//  1. spin: return immediately and let the caller re-poll the cursor (an
//     atomic load). Burns CPU but catches a peer that is mid-write,
//     keeping same-host latency in the nanoseconds. Skipped entirely when
//     GOMAXPROCS is 1 (with a single P, spinning only steals the
//     timeslice an in-process peer goroutine needs to make the progress
//     being waited for) and when the machine has a single CPU (the peer
//     — thread or process — can only run on the core the spinner is
//     occupying, so every spin cycle delays the very store being polled).
//  2. yield: runtime.Gosched, donating the P to runnable goroutines (the
//     in-process peer, or anyone else while a cross-process peer runs on
//     another CPU).
//  3. sleep: timed sleeps doubling from spinSleepMin up to spinSleepMax,
//     bounding idle-connection CPU at the cost of wake latency — the
//     honest price of a futex-free design, paid only by calls that
//     arrive after a connection has gone quiet (see DESIGN.md §10).
type waiter struct {
	spins int
	sleep time.Duration
}

const (
	spinCount    = 128
	yieldCount   = 64
	spinSleepMin = 4 * time.Microsecond
	// spinSleepMax bounds the worst-case wake latency for a call that
	// arrives after a connection has gone idle: the deepest sleeper wakes
	// within one spinSleepMax. 200µs keeps an idle connection under ~0.1%
	// of one core (a 5kHz poll of an atomic load) while cutting the idle
	// first-call penalty five-fold from the previous 1ms cap.
	spinSleepMax = 200 * time.Microsecond
)

// spinWaitOK is resolved once: whether phase-1 spinning can ever help.
// GOMAXPROCS changes after init are rare enough (tests, mostly) that a
// stale true only costs some spin cycles.
var spinWaitOK = runtime.GOMAXPROCS(0) > 1 && runtime.NumCPU() > 1

// pause blocks "a little more than last time". Callers loop:
// check-condition, pause, re-check.
func (w *waiter) pause() {
	w.spins++
	if spinWaitOK && w.spins <= spinCount {
		return
	}
	if w.spins <= spinCount+yieldCount {
		runtime.Gosched()
		return
	}
	if w.sleep == 0 {
		w.sleep = spinSleepMin
		cShmStalls.Inc()
	}
	time.Sleep(w.sleep)
	if w.sleep < spinSleepMax {
		w.sleep *= 2
		if w.sleep > spinSleepMax {
			w.sleep = spinSleepMax
		}
	}
}

// reset re-arms the waiter after progress, so the next stall starts back
// at the spin phase.
func (w *waiter) reset() {
	w.spins = 0
	w.sleep = 0
}
