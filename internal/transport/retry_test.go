package transport

// DialRetry tests: the rendezvous startup race (dial before the peer's
// Listen lands) must be absorbed by retrying ErrNoListener, while real
// failures and expiry return promptly.

import (
	"errors"
	"testing"
	"time"
)

func TestDialRetryAbsorbsStartupRace(t *testing.T) {
	tr := &InProc{}
	go func() {
		time.Sleep(20 * time.Millisecond)
		l, err := tr.Listen("retry-late")
		if err != nil {
			return
		}
		c, err := l.Accept()
		if err == nil {
			c.Close()
		}
		l.Close()
	}()
	c, err := DialRetry(tr, "retry-late", 5*time.Second)
	if err != nil {
		t.Fatalf("DialRetry across the startup race: %v", err)
	}
	c.Close()
}

func TestDialRetryTimesOutTyped(t *testing.T) {
	start := time.Now()
	_, err := DialRetry(&InProc{}, "retry-nobody", 50*time.Millisecond)
	if !errors.Is(err, ErrNoListener) {
		t.Fatalf("err = %v, want ErrNoListener", err)
	}
	if elapsed := time.Since(start); elapsed < 50*time.Millisecond {
		t.Fatalf("gave up after %s, before the timeout", elapsed)
	}
}

func TestDialRetryNonRetryableFailsFast(t *testing.T) {
	// A malformed TCP address is not a startup race; it must not be
	// retried for the whole timeout.
	start := time.Now()
	_, err := DialRetry(TCP{}, "not a host port", 10*time.Second)
	if err == nil {
		t.Fatal("malformed address dialed successfully")
	}
	if errors.Is(err, ErrNoListener) {
		t.Fatalf("malformed address mapped to ErrNoListener: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("non-retryable dial took %s", elapsed)
	}
}
