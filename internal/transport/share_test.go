package transport

// Tests for the shared-payload fan-out path: SharedBuf reference counting,
// SendShared delivery equivalence across every backend (the receiver must
// see hdr+payload exactly as if Send had been called on the concatenation),
// and DrainWrites on the TCP coalescer.

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

func TestSharedBufRefcount(t *testing.T) {
	b := NewSharedBuf(64)
	if b.Len() != 64 {
		t.Fatalf("len = %d, want 64", b.Len())
	}
	b.Retain()
	b.Retain()
	b.Release()
	b.Release()
	if b.Bytes() == nil {
		t.Fatal("storage released while a reference remains")
	}
	b.Release() // last reference: storage recycled
}

func TestSharedBufOverRelease(t *testing.T) {
	b := NewSharedBuf(8)
	b.Release()
	defer func() {
		if recover() == nil {
			t.Fatal("Release past zero did not panic")
		}
	}()
	b.Release()
}

func TestSharedBufRetainAfterFree(t *testing.T) {
	b := NewSharedBuf(8)
	b.Release()
	defer func() {
		if recover() == nil {
			t.Fatal("Retain after free did not panic")
		}
	}()
	b.Retain()
}

// TestSendSharedConformance checks that SendShared delivers hdr+payload as
// one frame, byte-identical to a plain Send of the concatenation, on every
// backend — the TCP coalescer takes the native zero-copy path, everything
// else the pooled-copy fallback — for payloads below and above the
// coalesce cutoff.
func TestSendSharedConformance(t *testing.T) {
	sizes := []int{0, 8, 1024, coalesceCutoff, coalesceCutoff + 1, 64 << 10}
	eachBackend(t, func(t *testing.T, tr Transport, addr string) {
		client, server := dialPair(t, tr, addr)
		done := make(chan error, 1)
		want := make(chan []byte, len(sizes))
		go func() {
			for range sizes {
				f, err := server.Recv()
				if err != nil {
					done <- err
					return
				}
				w := <-want
				if !bytes.Equal(f, w) {
					done <- fmt.Errorf("frame mismatch: got %d bytes, want %d", len(f), len(w))
					return
				}
				ReleaseFrame(f)
			}
			done <- nil
		}()
		rng := rand.New(rand.NewSource(7))
		for _, n := range sizes {
			hdr := make([]byte, 16)
			rng.Read(hdr)
			p := NewSharedBuf(n)
			rng.Read(p.Bytes())
			want <- append(append([]byte(nil), hdr...), p.Bytes()...)
			if err := SendShared(client, hdr, p); err != nil {
				t.Fatalf("SendShared %d: %v", n, err)
			}
			p.Release()
		}
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	})
}

// TestSendSharedConcurrentFanOut broadcasts one payload to many
// connections at once — the serving-tier shape — and checks each receiver
// sees intact bytes while the producer's single Release (after all sends
// retired) recycles the storage without a use-after-free under -race.
func TestSendSharedConcurrentFanOut(t *testing.T) {
	const subs = 8
	tr := TCP{}
	l, err := tr.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() {
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			go func(c Conn) {
				defer c.Close()
				f, err := c.Recv()
				if err != nil {
					return
				}
				c.Send(f) //nolint:errcheck
				ReleaseFrame(f)
			}(c)
		}
	}()

	payload := NewSharedBuf(32 << 10)
	rng := rand.New(rand.NewSource(9))
	rng.Read(payload.Bytes())
	hdr := []byte("hdr:")
	want := append(append([]byte(nil), hdr...), payload.Bytes()...)

	var wg sync.WaitGroup
	errs := make(chan error, subs)
	for i := 0; i < subs; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := tr.Dial(l.Addr())
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			payload.Retain()
			err = SendShared(c, hdr, payload)
			payload.Release()
			if err != nil {
				errs <- err
				return
			}
			got, err := c.Recv()
			if err != nil {
				errs <- err
				return
			}
			if !bytes.Equal(got, want) {
				errs <- fmt.Errorf("echo mismatch (%d bytes)", len(got))
			}
			ReleaseFrame(got)
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	payload.Release()
}

// TestDrainWrites checks the write-side barrier the graceful server
// shutdown relies on: after DrainWrites returns, every queued frame has
// been flushed to the socket and is receivable by the peer.
func TestDrainWrites(t *testing.T) {
	tr := TCP{}
	client, server := dialPair(t, tr, "127.0.0.1:0")
	d, ok := server.(WriteDrainer)
	if !ok {
		t.Fatalf("tcp conn does not implement WriteDrainer")
	}
	const n = 64
	for i := 0; i < n; i++ {
		msg := bytes.Repeat([]byte{byte(i)}, 512)
		if err := server.Send(msg); err != nil {
			t.Fatal(err)
		}
	}
	d.DrainWrites() // must not deadlock, and all frames must be on the wire
	for i := 0; i < n; i++ {
		f, err := client.Recv()
		if err != nil {
			t.Fatalf("recv %d: %v", i, err)
		}
		if len(f) != 512 || f[0] != byte(i) {
			t.Fatalf("frame %d corrupt", i)
		}
		ReleaseFrame(f)
	}
}
