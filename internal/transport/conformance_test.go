package transport

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"path/filepath"
	"sync"
	"testing"
)

// Cross-backend conformance suite: every Transport implementation must
// satisfy the Conn/Listener contracts identically, so the ORB can treat
// the backend as a pure deployment decision. Each check below runs over
// all four backends — InProc, TCP loopback, Faulty (zero fault plan,
// which must be a transparent pass-through), and the shared-memory
// rings — including under -race.

type backend struct {
	name string
	tr   func() Transport
	addr func(t *testing.T) string
}

func conformanceBackends() []backend {
	return []backend{
		{"inproc", func() Transport { return &InProc{} }, func(t *testing.T) string { return "conf" }},
		{"tcp", func() Transport { return TCP{} }, func(t *testing.T) string { return "127.0.0.1:0" }},
		{"faulty", func() Transport { return NewFaulty(TCP{}, Faults{}) }, func(t *testing.T) string { return "127.0.0.1:0" }},
		{"shm", func() Transport { return SHM{} }, func(t *testing.T) string { return filepath.Join(t.TempDir(), "ep") }},
	}
}

func eachBackend(t *testing.T, f func(t *testing.T, tr Transport, addr string)) {
	t.Helper()
	for _, b := range conformanceBackends() {
		b := b
		t.Run(b.name, func(t *testing.T) { f(t, b.tr(), b.addr(t)) })
	}
}

// dialPair returns a connected (client, server) pair plus cleanup.
func dialPair(t *testing.T, tr Transport, addr string) (Conn, Conn) {
	t.Helper()
	l, err := tr.Listen(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	accepted := make(chan Conn, 1)
	errc := make(chan error, 1)
	go func() {
		c, err := l.Accept()
		if err != nil {
			errc <- err
			return
		}
		accepted <- c
	}()
	client, err := tr.Dial(l.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { client.Close() })
	select {
	case server := <-accepted:
		t.Cleanup(func() { server.Close() })
		return client, server
	case err := <-errc:
		t.Fatal(err)
		return nil, nil
	}
}

// TestConformanceFrameSizes exercises framing from empty frames through
// payloads larger than the shm ring (forcing the streaming path), with
// contents checked byte for byte.
func TestConformanceFrameSizes(t *testing.T) {
	sizes := []int{0, 1, 7, 8, 9, 100, 4096, 64 << 10, shmRingSize - 16, shmRingSize, shmRingSize + 1, 3 * shmRingSize}
	eachBackend(t, func(t *testing.T, tr Transport, addr string) {
		client, server := dialPair(t, tr, addr)
		done := make(chan error, 1)
		go func() {
			for range sizes {
				f, err := server.Recv()
				if err != nil {
					done <- err
					return
				}
				if err := server.Send(f); err != nil {
					done <- err
					return
				}
				ReleaseFrame(f)
			}
			done <- nil
		}()
		rng := rand.New(rand.NewSource(12))
		for _, n := range sizes {
			msg := make([]byte, n)
			rng.Read(msg)
			if err := client.Send(msg); err != nil {
				t.Fatalf("send %d: %v", n, err)
			}
			got, err := client.Recv()
			if err != nil {
				t.Fatalf("recv %d: %v", n, err)
			}
			if !bytes.Equal(got, msg) {
				t.Fatalf("size %d: echo mismatch", n)
			}
			ReleaseFrame(got)
		}
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	})
}

// TestConformanceOversizedFrame: a frame beyond MaxFrame must be refused
// by Send without disturbing the connection.
func TestConformanceOversizedFrame(t *testing.T) {
	eachBackend(t, func(t *testing.T, tr Transport, addr string) {
		client, server := dialPair(t, tr, addr)
		if err := client.Send(make([]byte, MaxFrame+1)); !errors.Is(err, ErrFrameTooBig) {
			t.Fatalf("send err = %v, want ErrFrameTooBig", err)
		}
		// The connection must still work afterwards.
		go func() {
			f, err := server.Recv()
			if err == nil {
				server.Send(f)
			}
		}()
		if err := client.Send([]byte("still-alive")); err != nil {
			t.Fatal(err)
		}
		got, err := client.Recv()
		if err != nil || string(got) != "still-alive" {
			t.Fatalf("after oversize: %q, %v", got, err)
		}
	})
}

// TestConformanceCloseWhileRecv: closing either end must unblock a
// pending Recv with ErrClosed, promptly and without panics.
func TestConformanceCloseWhileRecv(t *testing.T) {
	for _, who := range []string{"local", "peer"} {
		who := who
		t.Run(who, func(t *testing.T) {
			eachBackend(t, func(t *testing.T, tr Transport, addr string) {
				client, server := dialPair(t, tr, addr)
				var wg sync.WaitGroup
				wg.Add(1)
				go func() {
					defer wg.Done()
					if _, err := client.Recv(); !errors.Is(err, ErrClosed) {
						t.Errorf("recv err = %v, want ErrClosed", err)
					}
				}()
				if who == "local" {
					client.Close()
				} else {
					server.Close()
				}
				wg.Wait()
			})
		})
	}
}

// TestConformanceDialErrors: dialing where nothing listens is
// ErrNoListener; listening twice on one address is ErrAddrInUse.
func TestConformanceDialErrors(t *testing.T) {
	eachBackend(t, func(t *testing.T, tr Transport, addr string) {
		l, err := tr.Listen(addr)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := tr.Listen(l.Addr()); !errors.Is(err, ErrAddrInUse) {
			t.Fatalf("second listen err = %v, want ErrAddrInUse", err)
		}
		live := l.Addr()
		l.Close()
		if _, err := tr.Dial(live); !errors.Is(err, ErrNoListener) && !errors.Is(err, ErrClosed) {
			t.Fatalf("dial closed listener err = %v, want ErrNoListener/ErrClosed", err)
		}
	})
}

// TestConformanceConcurrentSenders: frames from concurrent senders on
// one Conn are delivered whole, each exactly once.
func TestConformanceConcurrentSenders(t *testing.T) {
	const senders, frames = 4, 32
	eachBackend(t, func(t *testing.T, tr Transport, addr string) {
		client, server := dialPair(t, tr, addr)
		got := make(chan string, senders*frames)
		go func() {
			for i := 0; i < senders*frames; i++ {
				f, err := server.Recv()
				if err != nil {
					close(got)
					return
				}
				got <- string(f)
				ReleaseFrame(f)
			}
			close(got)
		}()
		var wg sync.WaitGroup
		for s := 0; s < senders; s++ {
			s := s
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < frames; i++ {
					if err := client.Send([]byte(fmt.Sprintf("s%02d-f%03d", s, i))); err != nil {
						t.Errorf("send: %v", err)
						return
					}
				}
			}()
		}
		wg.Wait()
		seen := make(map[string]bool)
		for f := range got {
			if len(f) != 8 || seen[f] {
				t.Fatalf("frame %q duplicated or torn", f)
			}
			seen[f] = true
		}
		if len(seen) != senders*frames {
			t.Fatalf("received %d distinct frames, want %d", len(seen), senders*frames)
		}
	})
}

// TestConformanceAcceptAfterClose: Accept on a closed listener is
// ErrClosed, including an Accept already blocked when Close lands.
func TestConformanceAcceptAfterClose(t *testing.T) {
	eachBackend(t, func(t *testing.T, tr Transport, addr string) {
		l, err := tr.Listen(addr)
		if err != nil {
			t.Fatal(err)
		}
		done := make(chan error, 1)
		go func() {
			_, err := l.Accept()
			done <- err
		}()
		l.Close()
		if err := <-done; !errors.Is(err, ErrClosed) {
			t.Fatalf("blocked accept err = %v, want ErrClosed", err)
		}
		if _, err := l.Accept(); !errors.Is(err, ErrClosed) {
			t.Fatalf("accept after close err = %v, want ErrClosed", err)
		}
	})
}
