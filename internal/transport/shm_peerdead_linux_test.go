//go:build linux

package transport

// Crash-liveness tests for the shm transport: a peer process that dies
// holding a mapped ring leaves no in-band close flag, so the survivor's
// only signal is the kernel dropping the dead side's open-file-description
// lock. These tests simulate the crash by tearing down the dead side's
// mapping and file descriptor without the end-flag handshake — what
// process death does (the OFD lock survives a bare close(2) while the
// mmap still references the description, so both must go) — and assert
// blocked operations fail typed (ErrPeerDead, wrapping ErrClosed) instead
// of spinning forever, while a merely slow peer is never misdeclared dead.

import (
	"errors"
	"path/filepath"
	"syscall"
	"testing"
	"time"
)

// shmPair dials and accepts one shm connection under dir.
func shmPair(t *testing.T, dir string) (dial, accept Conn) {
	t.Helper()
	ln, err := (SHM{}).Listen(dir)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	cc, ec := acceptAsync(ln)
	dc, err := (SHM{}).Dial(dir)
	if err != nil {
		t.Fatal(err)
	}
	select {
	case accept = <-cc:
	case err := <-ec:
		t.Fatal(err)
	case <-time.After(5 * time.Second):
		t.Fatal("accept timed out")
	}
	return dc, accept
}

// crashConn simulates process death of one side: mapping and descriptor
// both go away — releasing the open file description and with it the OFD
// liveness mark — with no end flag ever written. Close's sequence minus
// the in-band myEnd publication.
func crashConn(t *testing.T, c Conn) {
	t.Helper()
	sc, ok := c.(*shmConn)
	if !ok {
		t.Fatalf("not an shm conn: %T", c)
	}
	sc.once.Do(func() {
		sc.sendMu.Lock()
		sc.recvMu.Lock()
		defer sc.sendMu.Unlock()
		defer sc.recvMu.Unlock()
		sc.unmapped = true
		if err := syscall.Munmap(sc.mem); err != nil {
			t.Errorf("munmap: %v", err)
		}
		sc.mem = nil
		if err := sc.f.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
	})
}

func TestSHMPeerDeathUnblocksRecv(t *testing.T) {
	dc, ac := shmPair(t, filepath.Join(t.TempDir(), "ep"))
	defer ac.Close()

	done := make(chan error, 1)
	go func() {
		_, err := ac.Recv()
		done <- err
	}()
	// Let the receiver reach its blocked wait before the crash.
	time.Sleep(20 * time.Millisecond)
	crashConn(t, dc)

	select {
	case err := <-done:
		if !errors.Is(err, ErrPeerDead) {
			t.Fatalf("Recv after peer death = %v, want ErrPeerDead", err)
		}
		if !errors.Is(err, ErrClosed) {
			t.Fatalf("ErrPeerDead must wrap ErrClosed (retryable classification); got %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Recv still blocked after peer death")
	}
}

func TestSHMPeerDeathUnblocksSend(t *testing.T) {
	dc, ac := shmPair(t, filepath.Join(t.TempDir(), "ep"))
	defer dc.Close()

	// A frame larger than the ring forces the sender into the lockstep
	// path, blocked on the dead receiver forever draining nothing.
	big := make([]byte, shmRingSize+4096)
	done := make(chan error, 1)
	go func() { done <- dc.Send(big) }()
	time.Sleep(20 * time.Millisecond)
	crashConn(t, ac)

	select {
	case err := <-done:
		if !errors.Is(err, ErrPeerDead) {
			t.Fatalf("Send after peer death = %v, want ErrPeerDead", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Send still blocked after peer death")
	}
}

func TestSHMSlowPeerNotDeclaredDead(t *testing.T) {
	// A receiver blocked long enough to run many liveness probes must
	// still get the frame when the (alive, just slow) peer finally sends.
	dc, ac := shmPair(t, filepath.Join(t.TempDir(), "ep"))
	defer dc.Close()
	defer ac.Close()

	type res struct {
		f   []byte
		err error
	}
	done := make(chan res, 1)
	go func() {
		f, err := ac.Recv()
		done <- res{f, err}
	}()
	// Well past spin, yield, and hundreds of probe intervals.
	time.Sleep(300 * time.Millisecond)
	if err := dc.Send([]byte("late")); err != nil {
		t.Fatal(err)
	}
	select {
	case r := <-done:
		if r.err != nil {
			t.Fatalf("slow peer misdeclared dead: %v", r.err)
		}
		if string(r.f) != "late" {
			t.Fatalf("frame = %q", r.f)
		}
		ReleaseFrame(r.f)
	case <-time.After(5 * time.Second):
		t.Fatal("Recv never completed")
	}
}
