//go:build unix

package transport

import (
	crand "crypto/rand"
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"
	"unsafe"

	"repro/internal/obs"
)

// Shared-memory transport: a file-backed pair of SPSC byte rings per
// connection, for components on the same host that are not in the same
// process (where InProc applies) but should not pay the kernel socket
// round trip of TCP loopback.
//
// An address is a directory. The listener owns it by holding an
// exclusive flock on <dir>/listener.lock; a dialer creates a fresh
// <dir>/cNNN-NNN.ring file, maps it, and publishes a handshake word the
// listener's Accept loop claims by compare-and-swap. Both sides keep a
// shared flock on the ring file for as long as they have it mapped, so
// liveness is testable after a crash: if an exclusive flock on a ring
// file succeeds, nobody has it mapped and the file is garbage. See
// DESIGN.md §10 for the full layout and recovery story.
//
// Each direction of a connection is one ring: a power-of-two byte buffer
// plus two monotonically increasing cursors on separate cache lines —
// tail (bytes produced) written only by the sender, head (bytes
// consumed) written only by the receiver. Frames are an 8-byte
// little-endian length followed by the payload, padded to 8 bytes so a
// length word never straddles the wrap. A frame larger than the ring is
// streamed: the sender publishes tail as bytes become visible, the
// receiver frees space by publishing head as it copies out, and the two
// proceed in lockstep through a frame neither could hold alone.

const (
	shmMagic   = 0x53484d52494e4731 // "SHMRING1", also a format version
	shmHdrSize = 4096               // connection header: one page
	// shmRingSize is the data capacity of one direction. Must be a power
	// of two (offset math masks with shmRingSize-1) and a multiple of 8.
	// 256 KiB rides well above the ORB's coalescing sizes while keeping a
	// connection's mapping at ~516 KiB; frames beyond it stream.
	shmRingSize    = 256 << 10
	shmRingHdrSize = 128 // tail and head cursors, a cache line apart
	shmFileSize    = shmHdrSize + 2*(shmRingHdrSize+shmRingSize)

	// Connection-header offsets (all 8-aligned; the mmap base is
	// page-aligned, so absolute alignment follows).
	shmOffMagic      = 0  // u64, written last during dialer init
	shmOffState      = 8  // u32 handshake word, see shmState* below
	shmOffDialerEnd  = 16 // u32, 1 once the dialing side has closed
	shmOffAcceptEnd  = 20 // u32, 1 once the accepting side has closed
	shmOffRingSize   = 24 // u64, sanity-checked against shmRingSize
	shmOffRing0      = shmHdrSize
	shmOffRing1      = shmHdrSize + shmRingHdrSize + shmRingSize
	shmRingOffTail   = 0
	shmRingOffHead   = 64
	shmLockFile      = "listener.lock"
	shmRingSuffix    = ".ring"
	shmTmpSuffix     = ".tmp" // ring file still being initialized by its dialer
	shmDialTimeout   = 10 * time.Second
	shmProbeInterval = 10 * time.Millisecond
)

const (
	shmStateInit     = 0 // dialer still initializing the file
	shmStateReady    = 1 // dialer waiting; Accept may CAS-claim
	shmStateAccepted = 2 // claimed by a listener
)

// SHM is the same-host shared-memory transport. Addresses are directory
// paths (created on Listen if absent). The zero value is ready to use.
type SHM struct{}

func (SHM) Name() string { return "shm" }

// shmSeq disambiguates ring files created by the same process.
var shmSeq atomic.Uint64

// shmProcToken makes ring names unique across pid reuse: a listener's
// seen map keys on the file name, so a recycled pid regenerating an old
// c<pid>-<seq> name would otherwise be silently ignored by scan.
var shmProcToken = func() uint32 {
	var b [4]byte
	if _, err := crand.Read(b[:]); err == nil {
		return binary.LittleEndian.Uint32(b[:])
	}
	return uint32(time.Now().UnixNano())
}()

// Listen claims addr (a directory) by taking an exclusive flock on its
// lock file, then sweeps ring files left behind by crashed peers.
func (SHM) Listen(addr string) (Listener, error) {
	if err := os.MkdirAll(addr, 0o700); err != nil {
		return nil, fmt.Errorf("shm listen %q: %w", addr, err)
	}
	lf, err := os.OpenFile(filepath.Join(addr, shmLockFile), os.O_CREATE|os.O_RDWR, 0o600)
	if err != nil {
		return nil, fmt.Errorf("shm listen %q: %w", addr, err)
	}
	if err := syscall.Flock(int(lf.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		lf.Close()
		return nil, fmt.Errorf("%w: %q", ErrAddrInUse, addr)
	}
	sweepStaleRings(addr)
	return &shmListener{dir: addr, lock: lf, closed: make(chan struct{})}, nil
}

// sweepStaleRings unlinks ring files no process has mapped: both sides
// hold a shared flock while the file is open, so an exclusive flock
// succeeding proves abandonment (crash, kill -9, or plain exit).
func sweepStaleRings(dir string) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return
	}
	for _, e := range entries {
		if !strings.HasSuffix(e.Name(), shmRingSuffix) &&
			!strings.HasSuffix(e.Name(), shmRingSuffix+shmTmpSuffix) {
			continue
		}
		path := filepath.Join(dir, e.Name())
		f, err := os.Open(path)
		if err != nil {
			continue
		}
		if syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB) == nil {
			if os.Remove(path) == nil {
				cShmStale.Inc()
			}
		}
		f.Close()
	}
}

// Dial probes listener liveness, creates and maps a fresh ring file, and
// waits for the listener to claim it.
//
// The file is created and fully initialized under a temporary name that
// scan and sweep ignore, then renamed into place: a half-built ring must
// never be visible at its final name, because the window between create
// and flock is unlocked and zero-sized — exactly what the listener's
// stale-remnant cleanup looks for, so it would delete a live dial out
// from under us (observed as rare formation timeouts in multi-process
// launch storms before the rename was introduced).
func (SHM) Dial(addr string) (Conn, error) {
	if err := shmProbeListener(addr); err != nil {
		return nil, err
	}
	path := filepath.Join(addr, fmt.Sprintf("c%d-%08x-%d%s", os.Getpid(), shmProcToken, shmSeq.Add(1), shmRingSuffix))
	tmp := path + shmTmpSuffix
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_RDWR|os.O_EXCL, 0o600)
	if err != nil {
		return nil, fmt.Errorf("shm dial %q: %w", addr, err)
	}
	// The shared flock marks the file as live; held until Close unmaps.
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_SH); err != nil {
		f.Close()
		os.Remove(tmp)
		return nil, fmt.Errorf("shm dial %q: flock: %w", addr, err)
	}
	if err := f.Truncate(shmFileSize); err != nil {
		f.Close()
		os.Remove(tmp)
		return nil, fmt.Errorf("shm dial %q: %w", addr, err)
	}
	mem, err := syscall.Mmap(int(f.Fd()), 0, shmFileSize, syscall.PROT_READ|syscall.PROT_WRITE, syscall.MAP_SHARED)
	if err != nil {
		f.Close()
		os.Remove(tmp)
		return nil, fmt.Errorf("shm dial %q: mmap: %w", addr, err)
	}
	binary.LittleEndian.PutUint64(mem[shmOffRingSize:], shmRingSize)
	// Publish magic before flipping state to ready: Accept validates magic
	// only after observing ready, and both are atomic stores/loads.
	shmU64(mem, shmOffMagic).Store(shmMagic)
	shmU32(mem, shmOffState).Store(shmStateReady)
	if err := os.Rename(tmp, path); err != nil {
		shmU32(mem, shmOffDialerEnd).Store(1)
		syscall.Munmap(mem)
		f.Close()
		os.Remove(tmp)
		return nil, fmt.Errorf("shm dial %q: %w", addr, err)
	}

	abandon := func() {
		// Mark our end closed before unmapping: if a listener wins the
		// claim CAS in the same instant we give up, its conn observes
		// peerEnd and fails promptly instead of blocking in Recv forever.
		shmU32(mem, shmOffDialerEnd).Store(1)
		syscall.Munmap(mem)
		f.Close()
		os.Remove(path)
	}
	deadline := time.Now().Add(shmDialTimeout)
	lastProbe := time.Now()
	var w waiter
	for shmU32(mem, shmOffState).Load() != shmStateAccepted {
		if now := time.Now(); now.Sub(lastProbe) >= shmProbeInterval {
			lastProbe = now
			if err := shmProbeListener(addr); err != nil {
				abandon()
				return nil, err
			}
			if now.After(deadline) {
				abandon()
				return nil, fmt.Errorf("shm dial %q: handshake timeout", addr)
			}
		}
		w.pause()
	}
	cShmDials.Inc()
	return newShmConn(mem, f, path, true), nil
}

// shmProbeListener reports ErrNoListener unless a listener currently
// holds the exclusive lock on addr's lock file.
func shmProbeListener(addr string) error {
	lf, err := os.Open(filepath.Join(addr, shmLockFile))
	if err != nil {
		return fmt.Errorf("%w: %q", ErrNoListener, addr)
	}
	defer lf.Close()
	// A shared flock succeeding means no listener holds the exclusive
	// lock. (Dialers only ever take it non-blocking and drop it at once,
	// so dialers never block each other out of this probe.)
	if syscall.Flock(int(lf.Fd()), syscall.LOCK_SH|syscall.LOCK_NB) == nil {
		return fmt.Errorf("%w: %q", ErrNoListener, addr)
	}
	return nil
}

type shmListener struct {
	dir  string
	lock *os.File

	mu     sync.Mutex // serializes Accept; guards seen
	seen   map[string]bool
	closed chan struct{}
	once   sync.Once
}

func (l *shmListener) Addr() string { return l.dir }

func (l *shmListener) Close() error {
	l.once.Do(func() {
		close(l.closed)
		// Releasing the flock (via close) is what flips future dialer
		// probes to ErrNoListener; the lock file itself stays for reuse.
		l.lock.Close()
	})
	return nil
}

// Accept polls the directory for ring files in the ready state and
// claims one by CAS. Polling (with the waiter's backoff, capped at
// millisecond sleeps) trades a few milliseconds of accept latency for
// having no doorbell state that a crashed dialer could corrupt.
func (l *shmListener) Accept() (Conn, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.seen == nil {
		l.seen = make(map[string]bool)
	}
	var w waiter
	for {
		select {
		case <-l.closed:
			return nil, ErrClosed
		default:
		}
		if c := l.scan(); c != nil {
			cShmAccepts.Inc()
			return c, nil
		}
		w.pause()
	}
}

// scan tries to claim one ready ring file; nil if none are ready.
func (l *shmListener) scan() Conn {
	entries, err := os.ReadDir(l.dir)
	if err != nil {
		return nil
	}
	// Prune seen entries whose files are gone so a long-lived listener's
	// map tracks the directory instead of growing without bound.
	if len(l.seen) > 0 {
		present := make(map[string]bool, len(entries))
		for _, e := range entries {
			present[e.Name()] = true
		}
		for name := range l.seen {
			if !present[name] {
				delete(l.seen, name)
			}
		}
	}
	for _, e := range entries {
		name := e.Name()
		if !strings.HasSuffix(name, shmRingSuffix) || l.seen[name] {
			continue
		}
		path := filepath.Join(l.dir, name)
		f, err := os.OpenFile(path, os.O_RDWR, 0)
		if err != nil {
			l.seen[name] = true
			continue
		}
		if syscall.Flock(int(f.Fd()), syscall.LOCK_SH|syscall.LOCK_NB) != nil {
			f.Close()
			continue
		}
		// The dialer creates the file at size 0 and truncates afterwards;
		// mmapping it before the truncate would SIGBUS on the first load
		// past EOF. Skip short files without marking them seen (the dialer
		// is mid-init and will be picked up next scan). If nobody holds a
		// lock on a short file, the dialer died before the truncate —
		// remove the remnant so it is not rescanned forever.
		if st, err := f.Stat(); err != nil || st.Size() < shmFileSize {
			if err == nil && syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB) == nil {
				if os.Remove(path) == nil {
					cShmStale.Inc()
				}
			}
			f.Close()
			continue
		}
		mem, err := syscall.Mmap(int(f.Fd()), 0, shmFileSize, syscall.PROT_READ|syscall.PROT_WRITE, syscall.MAP_SHARED)
		if err != nil {
			f.Close()
			l.seen[name] = true
			continue
		}
		if shmU32(mem, shmOffState).Load() != shmStateReady ||
			shmU64(mem, shmOffMagic).Load() != shmMagic ||
			binary.LittleEndian.Uint64(mem[shmOffRingSize:]) != shmRingSize ||
			!shmU32(mem, shmOffState).CompareAndSwap(shmStateReady, shmStateAccepted) {
			// Not ready yet (dialer mid-init) — retry next scan; anything
			// already claimed or malformed is skipped for good.
			if shmU32(mem, shmOffState).Load() != shmStateInit {
				l.seen[name] = true
			}
			syscall.Munmap(mem)
			f.Close()
			continue
		}
		l.seen[name] = true
		return newShmConn(mem, f, path, false)
	}
	return nil
}

// shmRing is one direction's view of the mapped region.
type shmRing struct {
	tail *atomic.Uint64 // bytes ever produced; written by sender only
	head *atomic.Uint64 // bytes ever consumed; written by receiver only
	data []byte         // shmRingSize bytes, indexed by cursor & mask
}

func shmU64(mem []byte, off int) *atomic.Uint64 {
	return (*atomic.Uint64)(unsafe.Pointer(&mem[off]))
}

func shmU32(mem []byte, off int) *atomic.Uint32 {
	return (*atomic.Uint32)(unsafe.Pointer(&mem[off]))
}

func shmRingAt(mem []byte, base int) *shmRing {
	return &shmRing{
		tail: shmU64(mem, base+shmRingOffTail),
		head: shmU64(mem, base+shmRingOffHead),
		data: mem[base+shmRingHdrSize : base+shmRingHdrSize+shmRingSize : base+shmRingHdrSize+shmRingSize],
	}
}

// copyIn copies b into the ring at monotonic position pos (wrap-aware).
// Space must already be reserved by the caller's cursor arithmetic.
func (r *shmRing) copyIn(pos uint64, b []byte) {
	off := int(pos) & (shmRingSize - 1)
	n := copy(r.data[off:], b)
	if n < len(b) {
		copy(r.data, b[n:])
	}
}

// copyOut copies from monotonic position pos into b (wrap-aware).
func (r *shmRing) copyOut(pos uint64, b []byte) {
	off := int(pos) & (shmRingSize - 1)
	n := copy(b, r.data[off:])
	if n < len(b) {
		copy(b[n:], r.data)
	}
}

type shmConn struct {
	sendMu sync.Mutex
	recvMu sync.Mutex

	mem    []byte
	f      *os.File
	path   string
	dialer bool // which liveness byte is ours (see shm_livelock_*.go)

	sendRing *shmRing
	recvRing *shmRing
	myEnd    *atomic.Uint32 // this side's closed flag, in the mapping
	peerEnd  *atomic.Uint32

	unmapped bool // guarded by both mutexes; set by Close before munmap
	once     sync.Once
	closeErr error
}

// newShmConn builds a side's view: the dialer sends on ring 0 and
// receives on ring 1, the acceptor the reverse.
func newShmConn(mem []byte, f *os.File, path string, dialer bool) *shmConn {
	c := &shmConn{mem: mem, f: f, path: path, dialer: dialer}
	shmLiveLock(f, dialer)
	r0, r1 := shmRingAt(mem, shmOffRing0), shmRingAt(mem, shmOffRing1)
	de, ae := shmU32(mem, shmOffDialerEnd), shmU32(mem, shmOffAcceptEnd)
	if dialer {
		c.sendRing, c.recvRing, c.myEnd, c.peerEnd = r0, r1, de, ae
	} else {
		c.sendRing, c.recvRing, c.myEnd, c.peerEnd = r1, r0, ae, de
	}
	return c
}

func (c *shmConn) closedEither() bool {
	return c.myEnd.Load() != 0 || c.peerEnd.Load() != 0
}

// shmProbeEvery is the number of consecutive pauses between flock
// liveness probes of a blocked wait: with the waiter's sleep ramp capped
// at spinSleepMax, probes land roughly every 100ms of continuous
// blocking — invisible on a live connection, bounded hang on a dead one.
const shmProbeEvery = 512

// pauseProbe is w.pause() plus periodic crash-liveness detection. On a
// detected death it marks the peer end closed in the mapping — waking
// every other blocked waiter on this conn — and returns ErrPeerDead.
func (c *shmConn) pauseProbe(w *waiter) error {
	w.pause()
	if w.spins%shmProbeEvery != 0 {
		return nil
	}
	if shmPeerAlive(c.f, c.dialer) {
		return nil
	}
	if c.peerEnd.Load() != 0 {
		// Graceful close raced the probe: the peer set its flag before
		// releasing the lock.
		return ErrClosed
	}
	c.peerEnd.Store(1)
	cShmPeerDead.Inc()
	return ErrPeerDead
}

// waitSpace blocks until the ring can absorb need more bytes beyond
// position pos (i.e. pos+need-head <= capacity), or either side closes.
func (c *shmConn) waitSpace(r *shmRing, pos uint64, need int, w *waiter) error {
	for {
		if int(pos-r.head.Load()) <= shmRingSize-need {
			w.reset()
			return nil
		}
		if c.closedEither() {
			return ErrClosed
		}
		if err := c.pauseProbe(w); err != nil {
			return err
		}
	}
}

func (c *shmConn) Send(frame []byte) error {
	if len(frame) > MaxFrame {
		return fmt.Errorf("%w: %d bytes", ErrFrameTooBig, len(frame))
	}
	c.sendMu.Lock()
	defer c.sendMu.Unlock()
	if c.unmapped || c.closedEither() {
		return ErrClosed
	}
	r := c.sendRing
	var w waiter
	tail := r.tail.Load()
	if err := c.waitSpace(r, tail, 8, &w); err != nil {
		return err
	}
	var hdr [8]byte
	binary.LittleEndian.PutUint64(hdr[:], uint64(len(frame)))
	r.copyIn(tail, hdr[:])
	tail += 8
	r.tail.Store(tail)

	// Stream the payload: publish tail chunk by chunk so a frame larger
	// than the ring flows through it while the receiver drains.
	rem := frame
	for len(rem) > 0 {
		avail := shmRingSize - int(tail-r.head.Load())
		if avail <= 0 {
			if err := c.waitSpace(r, tail, 1, &w); err != nil {
				return err
			}
			continue
		}
		n := avail
		if n > len(rem) {
			n = len(rem)
		}
		r.copyIn(tail, rem[:n])
		tail += uint64(n)
		rem = rem[n:]
		r.tail.Store(tail)
	}
	// Pad to 8 so the next length word is aligned; pad bytes are never
	// read, but the cursor advance still needs reserved space.
	if pad := int(-tail & 7); pad > 0 {
		if err := c.waitSpace(r, tail, pad, &w); err != nil {
			return err
		}
		tail += uint64(pad)
		r.tail.Store(tail)
	}
	if obs.MetricsEnabled() {
		cFramesSent.Inc()
		cBytesSent.Add(uint64(len(frame)))
	}
	return nil
}

func (c *shmConn) Recv() ([]byte, error) {
	c.recvMu.Lock()
	defer c.recvMu.Unlock()
	if c.unmapped || c.myEnd.Load() != 0 {
		return nil, ErrClosed
	}
	r := c.recvRing
	var w waiter
	head := r.head.Load()
	// Wait for a length word. A peer close still drains fully buffered
	// frames (tail is only published for complete writes of each chunk,
	// and the peer finishes the in-flight Send before setting its flag).
	//
	// The comparison MUST be signed: the previous Recv rounds head up
	// over the sender's alignment pad as soon as the payload is fully
	// consumed, which can land head up to 7 bytes PAST a tail the
	// sender has not yet advanced over that pad. Unsigned tail-head
	// wraps to ~2^64 there and would let the receiver read a stale
	// previous-lap byte as the next frame's length word.
	for int64(r.tail.Load()-head) < 8 {
		if c.myEnd.Load() != 0 {
			return nil, ErrClosed
		}
		if c.peerEnd.Load() != 0 && int64(r.tail.Load()-head) < 8 {
			return nil, ErrClosed
		}
		if err := c.pauseProbe(&w); err != nil {
			return nil, err
		}
	}
	w.reset()
	var hdr [8]byte
	r.copyOut(head, hdr[:])
	n := binary.LittleEndian.Uint64(hdr[:])
	if n > MaxFrame {
		// Corrupt ring (or hostile peer): poison the connection rather
		// than resynchronize — there is no reliable resync point.
		c.myEnd.Store(1)
		return nil, fmt.Errorf("%w: %d bytes", ErrFrameTooBig, n)
	}
	pos := head + 8
	r.head.Store(pos)
	frame := grabFrame(int(n))
	copied := 0
	for copied < int(n) {
		avail := int(r.tail.Load() - pos)
		if avail <= 0 {
			if c.myEnd.Load() != 0 || c.peerEnd.Load() != 0 {
				ReleaseFrame(frame)
				return nil, ErrClosed
			}
			if err := c.pauseProbe(&w); err != nil {
				ReleaseFrame(frame)
				return nil, err
			}
			continue
		}
		w.reset()
		if avail > int(n)-copied {
			avail = int(n) - copied
		}
		r.copyOut(pos, frame[copied:copied+avail])
		copied += avail
		pos += uint64(avail)
		// Publishing head mid-frame is what lets the sender stream frames
		// larger than the ring.
		r.head.Store(pos)
	}
	r.head.Store((pos + 7) &^ 7) // skip the sender's alignment pad
	if obs.MetricsEnabled() {
		cFramesRecv.Inc()
		cBytesRecv.Add(n)
	}
	return frame, nil
}

func (c *shmConn) Close() error {
	c.once.Do(func() {
		// Order matters: publish the closed flag first so waiters parked
		// in Send/Recv observe it and drain out, then take both mutexes
		// so nobody is touching the mapping when it goes away.
		c.myEnd.Store(1)
		peerGone := c.peerEnd.Load() != 0
		c.sendMu.Lock()
		c.recvMu.Lock()
		c.unmapped = true
		err := syscall.Munmap(c.mem)
		c.mem = nil
		if cerr := c.f.Close(); err == nil {
			err = cerr
		}
		c.recvMu.Unlock()
		c.sendMu.Unlock()
		if peerGone {
			// Last one out unlinks; otherwise the peer (or the listener's
			// sweep) does.
			os.Remove(c.path)
		}
		c.closeErr = err
	})
	return c.closeErr
}
