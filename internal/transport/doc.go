// Package transport provides byte-level message transports for the CCA
// reproduction's distributed connections: the paper's §6.1 "connections
// through proxy intermediaries enabling distributed object interactions"
// and §2.2's dynamically attached remote visualization.
//
// Three backends implement the same Transport/Listener/Conn contract;
// ForScheme picks one from an address like "tcp://host:port",
// "shm:///path/dir", or "inproc://name":
//
//   - InProc is an in-process loopback: paired channel endpoints with no
//     serialization boundary crossed. It is the deterministic-test
//     backend and the latency upper bound every other backend is judged
//     against.
//   - TCP rides net with a userspace group-commit coalescer (below) and
//     works across hosts. It is the general case.
//   - SHM (unix-only; the stub on other platforms returns an error from
//     Listen/Dial) carries frames between processes on the same host
//     through a pair of mmap'd single-producer/single-consumer rings,
//     with no kernel involvement in the data path. Liveness and stale
//     cleanup ride flock; see DESIGN.md §10 for the ring layout and the
//     crash-recovery protocol.
//
// All three carry length-prefixed frames with the same semantics: Send
// is atomic per frame (concurrent senders never interleave), Recv
// returns pooled buffers the caller should hand back via ReleaseFrame,
// and errors collapse to the portable ErrClosed / ErrAddrInUse /
// ErrNoListener / ErrFrameTooBig so callers never match on
// backend-specific error strings.
//
// The hot-path cost model is built for a multiplexed RPC layer above:
//
//   - On TCP, senders that overlap a flush in progress are coalesced:
//     their frames gather in a pending queue and the next flush writes
//     them all with one writev (group commit — Nagle in userspace
//     without the timer). A lone sender flushes immediately, so
//     uncontended latency is one writev, exactly as before. Recv reads
//     through a buffered reader, so the common case is one read syscall
//     per flush window rather than two per frame.
//   - On SHM, a frame is an 8-byte length word plus payload copied
//     directly into the shared ring; the consumer publishes its read
//     cursor as it drains, so frames larger than the ring stream
//     through it in lockstep without staging buffers. Waiters spin
//     briefly (only when GOMAXPROCS>1), then yield, then sleep with
//     doubling backoff — no futex handshake, which keeps the
//     steady-state path allocation- and syscall-free at the price of
//     bounded wakeup latency on idle connections.
//
// For broadcast fan-out, SendShared sends one header plus a
// reference-counted SharedBuf payload: serving tiers pack a payload once
// and write the same bytes to many connections. The TCP coalescer
// splices the payload into its writev queue zero-copy (the segment holds
// its own reference until the flush retires); other backends fall back
// to a single pooled copy. WriteDrainer exposes the coalescer's
// write-side barrier, which graceful server shutdown uses to push the
// last replies to the socket before closing.
//
// Faulty wraps any backend for chaos testing: injected dial failures,
// send/recv severs, and latency. The conformance suite in
// conformance_test.go runs every backend through one table of
// frame-size, close-ordering, and dial-error contracts.
package transport
