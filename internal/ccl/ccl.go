package ccl

import (
	"errors"
	"fmt"
	"strconv"
	"time"
)

// LanguageVersion is the ccl header version this package reads and writes.
const LanguageVersion = 1

// Typed error classes. Every diagnostic the parser, validator, resolver,
// and compiler produce wraps exactly one of these, so callers (and the
// errors appendix of docs/CCL.md) can dispatch on errors.Is. Parse and
// validation errors additionally carry a "path:line:" position prefix.
var (
	// ErrHeader reports a missing or unsupported `ccl N` header line.
	ErrHeader = errors.New("ccl: missing or unsupported header")
	// ErrSyntax reports a lexical or grammatical problem in the document.
	ErrSyntax = errors.New("ccl: syntax error")
	// ErrUnknownStanza reports a stanza keyword the grammar does not know.
	ErrUnknownStanza = errors.New("ccl: unknown stanza")
	// ErrUnknownKey reports a setting key not accepted in its stanza.
	ErrUnknownKey = errors.New("ccl: unknown key")
	// ErrBadValue reports a value of the wrong shape (not a number, not a
	// duration, not in the keyword's vocabulary, conflicting keys, ...).
	ErrBadValue = errors.New("ccl: bad value")
	// ErrDuplicate reports a name or key declared twice.
	ErrDuplicate = errors.New("ccl: duplicate declaration")
	// ErrMissingKey reports a stanza missing a required key.
	ErrMissingKey = errors.New("ccl: missing required key")
	// ErrUndefined reports a connect or export referencing an instance the
	// document never declares.
	ErrUndefined = errors.New("ccl: undefined instance")
	// ErrUnknownVar reports a ${NAME} interpolation with no binding.
	ErrUnknownVar = errors.New("ccl: unknown variable")
	// ErrUnknownProvider reports a `provider` name no provider table knows.
	ErrUnknownProvider = errors.New("ccl: unknown provider")
	// ErrLockMismatch reports a lockfile that disagrees with the current
	// resolution (delete the lockfile to re-lock, or pin the constraint).
	ErrLockMismatch = errors.New("ccl: lockfile does not match resolution")
)

// Document is a parsed assembly: the AST the validator checks and the
// compiler lowers onto the repository Builder and the cca framework.
// Stanza slices preserve declaration order; the compiler instantiates and
// wires in that order.
type Document struct {
	// Path is the source path, used in error positions ("" = "<ccl>").
	Path string
	// Version is the `ccl N` header version.
	Version int
	// Name and Description come from the app stanza.
	Name        string
	Description string
	// Repository is the optional networked component repository; nil means
	// every typed component resolves against the local repository.
	Repository *RepositoryDecl
	Components []*ComponentDecl
	Remotes    []*RemoteDecl
	Exports    []*ExportDecl
	Connects   []*ConnectDecl
}

// RepositoryDecl names the networked repository the document resolves
// typed components from.
type RepositoryDecl struct {
	// Address is a scheme-qualified ORB address (tcp://host:port,
	// shm:///dir, or a comma-separated shard list).
	Address string
	Line    int
}

// ComponentDecl declares one local component instance, either resolved
// from a repository by type name and version constraint, or built by a
// named provider (for implementations whose constructors need arguments a
// deposited factory cannot supply — factories never serialize).
type ComponentDecl struct {
	Name string
	// Type is the repository component type name; exclusive with Provider.
	Type string
	// Constraint is the version constraint ("" = any version).
	Constraint string
	// Provider is a provider-table name; exclusive with Type.
	Provider string
	// Config is the component's configuration block, applied after
	// instantiation (typed components) or passed to the provider.
	Config Config
	Line   int
}

// RemoteDecl declares a proxy component for a port served by another OS
// process: a supervised scalar remote port, or — with a dist block — an
// attachment to a remote cohort's collective DistArray port.
type RemoteDecl struct {
	Name string
	// Address is the remote server's address, optionally scheme-qualified
	// (tcp:// or shm://; bare addresses mean tcp).
	Address string
	// Key is the exported object key (scalar) or published array name
	// (dist).
	Key string
	// Port is the provides-port name the proxy registers locally
	// (default "A" scalar, "data" dist).
	Port string
	// Type is the scalar port's SIDL type (default esi.MatrixData). A dist
	// remote always provides the collective pull type.
	Type      string
	Dist      *DistDecl
	Supervise *SuperviseDecl
	Line      int
}

// DistDecl describes the consumer-side data distribution of a collective
// attachment: how the remote global array lands in local ranks.
type DistDecl struct {
	// Map is "block" or "cyclic".
	Map string
	// Length is the global element count.
	Length int
	// Ranks is the consumer cohort size.
	Ranks int
	// Block is the cyclic block size (required for map cyclic).
	Block int
	Line  int
}

// SuperviseDecl tunes the self-healing connection under a remote proxy.
// Zero fields keep the compiler's defaults.
type SuperviseDecl struct {
	// Retries is the per-call attempt budget for idempotent methods.
	Retries int
	// Breaker is the consecutive-failed-redial threshold that opens the
	// circuit.
	Breaker int
	// Timeout bounds the initial dial.
	Timeout time.Duration
	// Heartbeat probes an idle connection after this long (0 = off).
	Heartbeat time.Duration
	// Restarts, when positive, arms crash recovery: after the circuit
	// opens the supervisor relaunches/redials the same address up to this
	// many times per outage.
	Restarts int
	Line     int
}

// ExportDecl publishes a local instance's provides port over the ORB for
// other processes to dial.
type ExportDecl struct {
	Instance string
	Port     string
	// Address is the scheme-qualified listen address
	// (default tcp://127.0.0.1:0).
	Address string
	// Shards is the shard-group size (default 1; >1 serves a
	// comma-joinable shard list via the ORB's shard serving).
	Shards int
	Line   int
}

// ConnectDecl wires user.usesPort to provider.providesPort.
type ConnectDecl struct {
	User, UsesPort         string
	Provider, ProvidesPort string
	Line                   int
}

// KV is one configuration setting.
type KV struct {
	Key, Value string
	Line       int
}

// Config is an ordered configuration block. Order is preserved so the
// formatter round-trips and providers may treat later keys as overrides.
type Config []KV

// Get returns the last value set for key.
func (c Config) Get(key string) (string, bool) {
	for i := len(c) - 1; i >= 0; i-- {
		if c[i].Key == key {
			return c[i].Value, true
		}
	}
	return "", false
}

// Int reads an integer key, returning def when absent.
func (c Config) Int(key string, def int) (int, error) {
	s, ok := c.Get(key)
	if !ok {
		return def, nil
	}
	n, err := strconv.Atoi(s)
	if err != nil {
		return 0, fmt.Errorf("%w: %s = %q is not an integer", ErrBadValue, key, s)
	}
	return n, nil
}

// Float reads a float key, returning def when absent.
func (c Config) Float(key string, def float64) (float64, error) {
	s, ok := c.Get(key)
	if !ok {
		return def, nil
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("%w: %s = %q is not a number", ErrBadValue, key, s)
	}
	return v, nil
}

// pos renders an error position.
func (d *Document) pos(line int) string {
	p := d.Path
	if p == "" {
		p = "<ccl>"
	}
	return fmt.Sprintf("%s:%d", p, line)
}
