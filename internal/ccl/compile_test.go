package ccl

import (
	"errors"
	"math"
	"strings"
	"testing"

	"repro/internal/array"
	"repro/internal/cca"
	ccoll "repro/internal/cca/collective"
	"repro/internal/core"
	dcoll "repro/internal/dist/collective"
	"repro/internal/esi"
	"repro/internal/linalg"
	"repro/internal/orb"
	"repro/internal/repo"
	"repro/internal/transport"
)

// TestCompileSolverswapMatchesProgrammatic is the declarative/programmatic
// equivalence check for the solverswap example: compiling the checked-in
// .ccl must produce the exact solve — same iterations, same residual, same
// solution vector — as the Go-programmed assembly from examples/solverswap.
func TestCompileSolverswapMatchesProgrammatic(t *testing.T) {
	const path = "../../examples/solverswap/solverswap.ccl"
	doc, err := Load(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	asm, err := Compile(doc, Options{LockPath: DefaultLockPath(path)})
	if err != nil {
		t.Fatal(err)
	}
	defer asm.Close()

	// The lockfile pins both typed components against the local store.
	if len(asm.Lock.Components) != 2 {
		t.Fatalf("lock %+v", asm.Lock.Components)
	}
	for _, le := range asm.Lock.Components {
		if le.Version != "1.0.0" || le.Source != "local" {
			t.Fatalf("lock entry %+v", le)
		}
	}

	// The same system the example solves: b = A·1 for the 48² operator the
	// document's advdiff provider builds.
	a := linalg.AdvDiff2D(48, 48, 8, 4)
	b := make([]float64, a.NRows)
	if err := a.Apply(linalg.Ones(a.NCols), b); err != nil {
		t.Fatal(err)
	}

	solve := func(app *core.App) (int32, float64, []float64) {
		comp, ok := app.Component("solver")
		if !ok {
			t.Fatal("no solver instance")
		}
		s := comp.(esi.EsiSolver)
		x := make([]float64, a.NRows)
		iters, err := s.Solve(b, &x)
		if err != nil {
			t.Fatal(err)
		}
		return iters, s.FinalResidual(), x
	}

	// The programmatic twin, wired exactly as examples/solverswap.runOnce
	// wires the bicgstab+ilu0 pair the document declares.
	twin, err := core.NewApp(core.Options{WithESI: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := twin.Install("op", esi.NewOperatorComponent(a)); err != nil {
		t.Fatal(err)
	}
	if err := twin.Create("solver", "esi.SolverComponent.bicgstab"); err != nil {
		t.Fatal(err)
	}
	if err := twin.Create("prec", "esi.PreconditionerComponent.ilu0"); err != nil {
		t.Fatal(err)
	}
	for _, c := range [][4]string{
		{"solver", "A", "op", "A"},
		{"prec", "A", "op", "A"},
		{"solver", "M", "prec", "M"},
	} {
		if _, err := twin.Connect(c[0], c[1], c[2], c[3]); err != nil {
			t.Fatal(err)
		}
	}
	tc, _ := twin.Component("solver")
	tc.(esi.EsiSolver).SetTolerance(1e-8)
	tc.(interface{ SetMaxIterations(int32) }).SetMaxIterations(2000)

	cclIters, cclRes, cclX := solve(asm.App)
	twinIters, twinRes, twinX := solve(twin)
	if cclIters != twinIters || cclRes != twinRes {
		t.Fatalf("ccl solve (%d iters, %g) != programmatic (%d iters, %g)",
			cclIters, cclRes, twinIters, twinRes)
	}
	for i := range cclX {
		if cclX[i] != twinX[i] {
			t.Fatalf("x[%d]: ccl %v != programmatic %v", i, cclX[i], twinX[i])
		}
	}
	if cclRes > 1e-8 {
		t.Fatalf("relative residual %g did not meet the declared tolerance", cclRes)
	}
}

// frozenField is a publisher-side rank chunk holding one fixed epoch.
type frozenField struct {
	side ccoll.Side
	data []float64
}

func (f *frozenField) Side() ccoll.Side     { return f.side }
func (f *frozenField) LocalData() []float64 { return f.data }

// startSim publishes a frozen M-rank block-mapped field whose element at
// global index g holds step + g/1e6, and returns its dial address.
func startSim(t *testing.T, gl, ranks int, stepVal float64) string {
	t.Helper()
	dm := array.NewBlockMap(gl, ranks)
	ports := make([]ccoll.DistArrayPort, ranks)
	for r := 0; r < ranks; r++ {
		f := &frozenField{side: ccoll.Side{Map: dm}, data: make([]float64, dm.LocalLen(r))}
		ports[r] = f
	}
	for _, run := range dm.Runs() {
		f := ports[run.Rank].(*frozenField)
		for k := 0; k < run.Global.Len(); k++ {
			f.data[run.Local+k] = stepVal + float64(run.Global.Lo+k)/1e6
		}
	}
	oa := orb.NewObjectAdapter()
	if _, err := dcoll.Publish(oa, "wave", ports); err != nil {
		t.Fatal(err)
	}
	l, err := transport.TCP{}.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := orb.Serve(oa, l)
	t.Cleanup(func() { srv.Close() })
	return srv.Addr()
}

// startRepoService serves a seeded repository over the ORB and returns its
// dial address.
func startRepoService(t *testing.T) string {
	t.Helper()
	seed, err := core.NewApp(core.Options{WithESI: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := DepositConsumer(seed.Repo); err != nil {
		t.Fatal(err)
	}
	svc, err := repo.NewServiceFrom(seed.Repo)
	if err != nil {
		t.Fatal(err)
	}
	oa := orb.NewObjectAdapter()
	svc.Bind(oa)
	l, err := transport.TCP{}.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := orb.Serve(oa, l)
	t.Cleanup(func() { srv.Close() })
	return srv.Addr()
}

// TestCompileDistvizMatchesProgrammatic compiles the checked-in distviz
// assembly — component resolution over a live networked repository, the
// remote collective port attached with an M→N redistribution — and holds
// the pulled field equal, element for element, to a Go-programmed
// attachment to the same simulation.
func TestCompileDistvizMatchesProgrammatic(t *testing.T) {
	const (
		path  = "../../examples/distviz/distviz.ccl"
		gl    = 40000
		nViz  = 3
		step  = 7.0
		block = 64
	)
	simAddr := startSim(t, gl, 2, step)
	repoAddr := startRepoService(t)

	doc, err := Load(path, map[string]string{"SIM_ADDR": simAddr, "REPO_ADDR": repoAddr})
	if err != nil {
		t.Fatal(err)
	}
	asm, err := Compile(doc, Options{LockPath: DefaultLockPath(path)})
	if err != nil {
		t.Fatal(err)
	}
	defer asm.Close()

	// The resolution came over the wire and the lockfile pins it.
	if len(asm.Lock.Components) != 1 {
		t.Fatalf("lock %+v", asm.Lock.Components)
	}
	if le := asm.Lock.Components[0]; le.Instance != "viz" || le.Type != ConsumerType ||
		le.Version != "0.1.0" || le.Source != "repository" {
		t.Fatalf("lock entry %+v", le)
	}

	pullAll := func(app *core.App) [][]float64 {
		port, err := app.Port("viz", "in")
		if err != nil {
			t.Fatal(err)
		}
		pull := port.(ccoll.PullPort)
		if pull.GlobalLen() != gl || pull.Ranks() != nViz {
			t.Fatalf("pull geometry %d/%d", pull.GlobalLen(), pull.Ranks())
		}
		outs := make([][]float64, nViz)
		for r := 0; r < nViz; r++ {
			outs[r] = make([]float64, pull.LocalLen(r))
			if err := pull.Pull(r, outs[r]); err != nil {
				t.Fatalf("rank %d: %v", r, err)
			}
		}
		return outs
	}

	got := pullAll(asm.App)

	// Placement check against the analytic field.
	cdm := array.NewCyclicMap(gl, nViz, block)
	for _, run := range cdm.Runs() {
		for k := 0; k < run.Global.Len(); k++ {
			g := run.Global.Lo + k
			want := step + float64(g)/1e6
			if v := got[run.Rank][run.Local+k]; math.Abs(v-want) > 1e-12 {
				t.Fatalf("global %d: got %v want %v", g, v, want)
			}
		}
	}

	// The programmatic twin: same attachment built through Go calls.
	twin, err := core.NewApp(core.Options{
		Flavor:  cca.FlavorInProcess | cca.FlavorDistributed,
		WithESI: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := DepositConsumer(twin.Repo); err != nil {
		t.Fatal(err)
	}
	imp, err := dcoll.InstallRemoteDistArray(twin.Fw, "wave", transport.TCP{}, simAddr, "wave",
		array.NewCyclicMap(gl, nViz, block), dcoll.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer imp.Close()
	if err := twin.Create("viz", ConsumerType); err != nil {
		t.Fatal(err)
	}
	if _, err := twin.Connect("viz", "in", "wave", "data"); err != nil {
		t.Fatal(err)
	}
	want := pullAll(twin)

	for r := range got {
		if len(got[r]) != len(want[r]) {
			t.Fatalf("rank %d length %d != %d", r, len(got[r]), len(want[r]))
		}
		for i := range got[r] {
			if got[r][i] != want[r][i] {
				t.Fatalf("rank %d elem %d: ccl %v != programmatic %v", r, i, got[r][i], want[r][i])
			}
		}
	}
}

// TestCompilePipelineExports compiles the pipeline golden (typed solver +
// provider operator + sharded export) and checks the export came up as a
// shard group.
func TestCompilePipelineExports(t *testing.T) {
	doc, err := Load("testdata/pipeline.ccl", nil)
	if err != nil {
		t.Fatal(err)
	}
	asm, err := Compile(doc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer asm.Close()
	if len(asm.Exports) != 1 {
		t.Fatalf("exports %+v", asm.Exports)
	}
	e := asm.Exports[0]
	if e.Instance != "op" || e.Port != "A" || e.Shards != 2 {
		t.Fatalf("export %+v", e)
	}
	if !strings.Contains(e.Addr, ",") {
		t.Fatalf("sharded export bound a single address %q", e.Addr)
	}
	if e.Key == "" {
		t.Fatal("export key empty")
	}
	// Lock handling was skipped: no path given.
	if asm.LockPath != "" || asm.LockCreated {
		t.Fatalf("unexpected lock handling %q %v", asm.LockPath, asm.LockCreated)
	}
}

// TestCompileErrors covers the compiler's own failure classes (the parser
// and validator classes have their own table).
func TestCompileErrors(t *testing.T) {
	mustDoc := func(src string) *Document {
		doc, err := Parse(src, ParseOptions{Path: "err.ccl"})
		if err != nil {
			t.Fatal(err)
		}
		return doc
	}

	t.Run("unknown provider", func(t *testing.T) {
		doc := mustDoc("ccl 1\ncomponent op {\n  provider warp\n}\n")
		if _, err := Compile(doc, Options{}); !errors.Is(err, ErrUnknownProvider) {
			t.Fatalf("got %v", err)
		}
	})

	t.Run("provider config", func(t *testing.T) {
		doc := mustDoc("ccl 1\ncomponent op {\n  provider poisson\n  config {\n    n zero\n  }\n}\n")
		if _, err := Compile(doc, Options{}); !errors.Is(err, ErrBadValue) {
			t.Fatalf("got %v", err)
		}
	})

	t.Run("no factory", func(t *testing.T) {
		app, err := core.NewApp(core.Options{WithESI: true})
		if err != nil {
			t.Fatal(err)
		}
		// A deposited but factory-less entry is what a fetched network
		// entry looks like: metadata without code.
		if err := app.Repo.Deposit(repo.Entry{Name: "x.Ghost", Version: "1.0"}); err != nil {
			t.Fatal(err)
		}
		doc := mustDoc("ccl 1\ncomponent g {\n  type x.Ghost\n  version ^1.0\n}\n")
		_, err = Compile(doc, Options{App: app})
		if !errors.Is(err, repo.ErrNoFactory) {
			t.Fatalf("got %v", err)
		}
		if !strings.Contains(err.Error(), "factories never serialize") {
			t.Fatalf("error does not explain the remedy: %v", err)
		}
	})

	t.Run("unknown config key on typed component", func(t *testing.T) {
		doc := mustDoc("ccl 1\ncomponent s {\n  type esi.SolverComponent.cg\n  config {\n    colour red\n  }\n}\n")
		if _, err := Compile(doc, Options{}); !errors.Is(err, ErrUnknownKey) {
			t.Fatalf("got %v", err)
		}
	})

	t.Run("setter not accepted", func(t *testing.T) {
		doc := mustDoc("ccl 1\ncomponent p {\n  type esi.PreconditionerComponent.jacobi\n  config {\n    tolerance 1e-8\n  }\n}\n")
		if _, err := Compile(doc, Options{}); !errors.Is(err, ErrBadValue) {
			t.Fatalf("got %v", err)
		}
	})

	t.Run("constraint mismatch", func(t *testing.T) {
		doc := mustDoc("ccl 1\ncomponent s {\n  type esi.SolverComponent.cg\n  version ^9.0\n}\n")
		if _, err := Compile(doc, Options{}); !errors.Is(err, repo.ErrNoMatch) {
			t.Fatalf("got %v", err)
		}
	})

	t.Run("bad remote scheme", func(t *testing.T) {
		doc := mustDoc("ccl 1\nremote r {\n  address \"carrier-pigeon://x\"\n  key k\n}\n")
		if _, err := Compile(doc, Options{}); !errors.Is(err, ErrBadValue) {
			t.Fatalf("got %v", err)
		}
	})

	t.Run("lock mismatch", func(t *testing.T) {
		dir := t.TempDir()
		lockPath := dir + "/a.ccl.lock"
		doc := mustDoc("ccl 1\ncomponent s {\n  type esi.SolverComponent.cg\n  version ^1.0\n}\n")
		asm, err := Compile(doc, Options{LockPath: lockPath})
		if err != nil {
			t.Fatal(err)
		}
		asm.Close()
		if !asm.LockCreated {
			t.Fatal("first compile should create the lockfile")
		}
		// The "same" document now resolves a different solver: the pinned
		// world has shifted, so the compile must refuse.
		doc2 := mustDoc("ccl 1\ncomponent s {\n  type esi.SolverComponent.gmres\n  version ^1.0\n}\n")
		if _, err := Compile(doc2, Options{LockPath: lockPath}); !errors.Is(err, ErrLockMismatch) {
			t.Fatalf("got %v", err)
		}
	})
}
