package ccl

import (
	"os"
	"path/filepath"
	"testing"
)

// FuzzParse checks the parser's robustness invariant (never panic, never
// hang) and the formatter's round-trip property: any source that parses
// and validates must format to text that parses and validates again, and
// canonical formatting must be a fixed point.
func FuzzParse(f *testing.F) {
	seeds, _ := filepath.Glob("testdata/*.ccl")
	for _, path := range seeds {
		src, err := os.ReadFile(path)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(string(src))
	}
	f.Add("ccl 1\ncomponent a {\n  provider p\n}\nconnect a.x -> a.y\n")
	f.Add("ccl 1\nremote r {\n  address a\n  key k\n  supervise {\n    timeout 1s\n  }\n}\n")
	f.Add("ccl 1\napp x {\n  description \"${V}\"\n}\n")

	vars := map[string]string{"V": "v", "SIM_ADDR": "a:1", "REPO_ADDR": "a:2"}
	f.Fuzz(func(t *testing.T, src string) {
		doc, err := Parse(src, ParseOptions{Path: "fuzz.ccl", Vars: vars})
		if err != nil {
			return
		}
		if err := Validate(doc); err != nil {
			return
		}
		out := Format(doc)
		doc2, err := Parse(out, ParseOptions{Path: "fuzz.ccl"})
		if err != nil {
			t.Fatalf("formatted output does not reparse: %v\ninput:\n%s\nformatted:\n%s", err, src, out)
		}
		if err := Validate(doc2); err != nil {
			t.Fatalf("formatted output does not revalidate: %v\nformatted:\n%s", err, out)
		}
		if again := Format(doc2); again != out {
			t.Fatalf("format not a fixed point:\n--- first\n%s\n--- second\n%s", out, again)
		}
	})
}
