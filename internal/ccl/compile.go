package ccl

import (
	"errors"
	"fmt"
	"strconv"
	"strings"

	"repro/internal/array"
	"repro/internal/cca"
	"repro/internal/core"
	"repro/internal/dist"
	dcoll "repro/internal/dist/collective"
	"repro/internal/obs"
	"repro/internal/orb"
	"repro/internal/repo"
	"repro/internal/transport"
)

// Compile instruments.
var (
	cCompiles        = obs.NewCounter("ccl.compiles")
	cLockVerified    = obs.NewCounter("ccl.lock_verified")
	cLockCreated     = obs.NewCounter("ccl.lock_created")
	cRemoteInstalled = obs.NewCounter("ccl.remotes_installed")
)

// Options configures Compile.
type Options struct {
	// App is the target application container. Nil builds a fresh one
	// (WithESI, in-process + distributed flavor).
	App *core.App
	// Source overrides where typed components resolve from. Nil follows
	// the document: the repository stanza's address when present
	// (dialed and closed with the assembly), the local repository
	// otherwise.
	Source Source
	// SourceName tags lockfile entries when Source is set ("local" or
	// "repository"); ignored otherwise.
	SourceName string
	// Providers is merged over BuiltinProviders (same name shadows).
	Providers map[string]Provider
	// Transport overrides the remote/export transport chosen from address
	// schemes — for fault-injecting wrappers. Nil follows the scheme.
	Transport transport.Transport
	// LockPath is the lockfile to verify or create. "" skips lockfile
	// handling (tests, throwaway assemblies); Load-driven callers pass
	// DefaultLockPath(doc.Path).
	LockPath string
	// DefaultSupervisor seeds the supervision settings a remote's
	// supervise block overrides.
	DefaultSupervisor orb.SupervisorOptions
}

// ExportResult records one published port.
type ExportResult struct {
	Instance, Port string
	// Key is the exported object key ("instance/port").
	Key string
	// Addr is the bound address (comma-separated list for shard groups).
	Addr   string
	Shards int
}

// Assembly is a compiled, running application: the document lowered onto a
// framework. Close releases everything the compile opened (remote
// connections, exporters, the repository client).
type Assembly struct {
	App *core.App
	Doc *Document
	// Resolutions lists every typed component's resolved version.
	Resolutions []Resolution
	// Lock is the resolution lock; LockPath/LockCreated report what
	// VerifyOrCreate did ("" when lockfile handling was skipped).
	Lock        *Lock
	LockPath    string
	LockCreated bool
	// Exports lists the published ports, in declaration order.
	Exports []ExportResult

	closers []func()
}

// Close releases the assembly's connections and servers, newest first.
// The framework and its local components stay installed.
func (a *Assembly) Close() {
	for i := len(a.closers) - 1; i >= 0; i-- {
		a.closers[i]()
	}
	a.closers = nil
}

// Compile validates the document, resolves and locks its typed
// components, and lowers it onto the configuration API: repository
// Builder calls for components, supervised remote-port installs for
// remotes, ORB exporters for exports, framework connects for wirings —
// in declaration order. On error every partial effect with a lifetime
// (connections, servers) is released; installed components remain in
// opts.App if one was supplied.
func Compile(d *Document, opts Options) (*Assembly, error) {
	if err := Validate(d); err != nil {
		return nil, err
	}
	app := opts.App
	if app == nil {
		var err error
		app, err = core.NewApp(core.Options{
			Flavor:  cca.FlavorInProcess | cca.FlavorDistributed,
			WithESI: true,
		})
		if err != nil {
			return nil, err
		}
		// The default container carries every builtin implementation a
		// document can name by type, so network-resolved entries find
		// their local factories (factories never serialize).
		if err := DepositConsumer(app.Repo); err != nil {
			return nil, err
		}
	}
	a := &Assembly{App: app, Doc: d}
	fail := func(err error) (*Assembly, error) {
		a.Close()
		return nil, err
	}

	// Resolve typed components and verify/create the lockfile.
	src, srcName := opts.Source, opts.SourceName
	if src == nil {
		if d.Repository != nil {
			client, err := repo.DialService(d.Repository.Address)
			if err != nil {
				return fail(fmt.Errorf("%s: dialing repository: %w", d.pos(d.Repository.Line), err))
			}
			a.closers = append(a.closers, func() { client.Close() }) //nolint:errcheck
			src, srcName = client, "repository"
		} else {
			src, srcName = LocalSource{R: app.Repo}, "local"
		}
	}
	res, rev, err := ResolveComponents(d, src, srcName)
	if err != nil {
		return fail(err)
	}
	a.Resolutions = res
	a.Lock = NewLock(d, res, rev)
	if opts.LockPath != "" {
		a.LockPath = opts.LockPath
		created, err := VerifyOrCreate(opts.LockPath, a.Lock)
		if err != nil {
			return fail(err)
		}
		a.LockCreated = created
		if created {
			cLockCreated.Inc()
		} else {
			cLockVerified.Inc()
		}
	}

	// Instantiate components.
	providers := BuiltinProviders()
	for name, p := range opts.Providers {
		providers[name] = p
	}
	byInstance := map[string]Resolution{}
	for _, r := range res {
		byInstance[r.Instance] = r
	}
	for _, c := range d.Components {
		if c.Provider != "" {
			p, ok := providers[c.Provider]
			if !ok {
				return fail(fmt.Errorf("%s: %w: %q for component %q", d.pos(c.Line), ErrUnknownProvider, c.Provider, c.Name))
			}
			comp, err := p(c.Config)
			if err != nil {
				return fail(fmt.Errorf("%s: provider %s for %q: %w", d.pos(c.Line), c.Provider, c.Name, err))
			}
			if err := app.Install(c.Name, comp); err != nil {
				return fail(fmt.Errorf("%s: installing %q: %w", d.pos(c.Line), c.Name, err))
			}
			continue
		}
		// Typed: instantiation is always local — factories never
		// serialize. A network-resolved entry whose type the local
		// repository has not deposited is merged in (description, SIDL,
		// ports) so the local table knows it, but without a locally bound
		// factory it cannot instantiate.
		if _, err := app.Repo.Retrieve(c.Type); errors.Is(err, repo.ErrNotFound) {
			r := byInstance[c.Name]
			if err := app.Repo.Deposit(*r.Entry); err != nil {
				return fail(fmt.Errorf("%s: merging fetched entry %q: %w", d.pos(c.Line), c.Type, err))
			}
		}
		if err := app.Create(c.Name, c.Type); err != nil {
			if errors.Is(err, repo.ErrNoFactory) {
				err = fmt.Errorf("%w (factories never serialize: bind one with Repository.BindFactory, or declare a provider)", err)
			}
			return fail(fmt.Errorf("%s: creating %q: %w", d.pos(c.Line), c.Name, err))
		}
		comp, _ := app.Component(c.Name)
		if err := applyConfig(d, c, comp); err != nil {
			return fail(err)
		}
	}

	// Remote proxies.
	for _, r := range d.Remotes {
		tr, addr, err := schemeTransport(opts.Transport, r.Address)
		if err != nil {
			return fail(fmt.Errorf("%s: remote %q: %w", d.pos(r.Line), r.Name, err))
		}
		sup := supervisorOptions(opts.DefaultSupervisor, r.Supervise, addr)
		if r.Dist != nil {
			var dm array.DataMap
			if r.Dist.Map == "block" {
				dm = array.NewBlockMap(r.Dist.Length, r.Dist.Ranks)
			} else {
				dm = array.NewCyclicMap(r.Dist.Length, r.Dist.Ranks, r.Dist.Block)
			}
			imp, err := dcoll.InstallRemoteDistArray(app.Fw, r.Name, tr, addr, r.Key, dm, dcoll.Options{Supervisor: sup})
			if err != nil {
				return fail(fmt.Errorf("%s: remote %q: %w", d.pos(r.Line), r.Name, err))
			}
			a.closers = append(a.closers, func() { imp.Close() }) //nolint:errcheck
		} else {
			rp, err := dist.InstallSupervisedRemoteOperator(app.Fw, r.Name, tr, addr, r.Key, r.Type, sup)
			if err != nil {
				return fail(fmt.Errorf("%s: remote %q: %w", d.pos(r.Line), r.Name, err))
			}
			a.closers = append(a.closers, func() { rp.Close() }) //nolint:errcheck
		}
		cRemoteInstalled.Inc()
	}

	// Exports.
	for _, e := range d.Exports {
		var exp *dist.Exporter
		if e.Shards > 1 {
			exp, err = dist.NewExporterShards(app.Fw, e.Address, e.Shards)
			if err != nil {
				return fail(fmt.Errorf("%s: export %s.%s: %w", d.pos(e.Line), e.Instance, e.Port, err))
			}
		} else {
			l, err := orb.ListenAddr(e.Address)
			if err != nil {
				return fail(fmt.Errorf("%s: export %s.%s: %w", d.pos(e.Line), e.Instance, e.Port, err))
			}
			exp = dist.NewExporter(app.Fw, l)
		}
		key, err := exp.Export(e.Instance, e.Port)
		if err != nil {
			exp.Close()
			return fail(fmt.Errorf("%s: export %s.%s: %w", d.pos(e.Line), e.Instance, e.Port, err))
		}
		a.closers = append(a.closers, exp.Close)
		a.Exports = append(a.Exports, ExportResult{
			Instance: e.Instance, Port: e.Port, Key: key, Addr: exp.Addr(), Shards: e.Shards,
		})
	}

	// Wirings.
	for _, c := range d.Connects {
		if _, err := app.Connect(c.User, c.UsesPort, c.Provider, c.ProvidesPort); err != nil {
			return fail(fmt.Errorf("%s: connect %s.%s -> %s.%s: %w", d.pos(c.Line), c.User, c.UsesPort, c.Provider, c.ProvidesPort, err))
		}
	}
	cCompiles.Inc()
	return a, nil
}

// applyConfig applies a typed component's config block through the
// optional setter interfaces the component implements.
func applyConfig(d *Document, c *ComponentDecl, comp cca.Component) error {
	for _, kv := range c.Config {
		switch kv.Key {
		case "tolerance":
			v, err := strconv.ParseFloat(kv.Value, 64)
			if err != nil {
				return fmt.Errorf("%s: %w: tolerance = %q is not a number", d.pos(kv.Line), ErrBadValue, kv.Value)
			}
			t, ok := comp.(interface{ SetTolerance(float64) })
			if !ok {
				return fmt.Errorf("%s: %w: %q does not accept `tolerance`", d.pos(kv.Line), ErrBadValue, c.Name)
			}
			t.SetTolerance(v)
		case "maxiter":
			v, err := strconv.Atoi(kv.Value)
			if err != nil {
				return fmt.Errorf("%s: %w: maxiter = %q is not an integer", d.pos(kv.Line), ErrBadValue, kv.Value)
			}
			t, ok := comp.(interface{ SetMaxIterations(int32) })
			if !ok {
				return fmt.Errorf("%s: %w: %q does not accept `maxiter`", d.pos(kv.Line), ErrBadValue, c.Name)
			}
			t.SetMaxIterations(int32(v))
		default:
			return fmt.Errorf("%s: %w: %q in %s's config (typed components accept: tolerance, maxiter)", d.pos(kv.Line), ErrUnknownKey, kv.Key, c.Name)
		}
	}
	return nil
}

// schemeTransport maps a possibly scheme-qualified remote address to a
// transport backend and the backend-level address. override (when non-nil)
// wins, keeping the address stripping.
func schemeTransport(override transport.Transport, addr string) (transport.Transport, string, error) {
	var tr transport.Transport = transport.TCP{}
	switch {
	case strings.HasPrefix(addr, "tcp://"):
		addr = strings.TrimPrefix(addr, "tcp://")
	case strings.HasPrefix(addr, "shm://"):
		tr, addr = transport.SHM{}, strings.TrimPrefix(addr, "shm://")
	case strings.Contains(addr, "://"):
		return nil, "", fmt.Errorf("%w: unknown address scheme in %q (tcp:// or shm://)", ErrBadValue, addr)
	}
	if override != nil {
		tr = override
	}
	return tr, addr, nil
}

// supervisorOptions folds a supervise block over the compile defaults.
func supervisorOptions(def orb.SupervisorOptions, s *SuperviseDecl, addr string) orb.SupervisorOptions {
	o := def
	if s == nil {
		return o
	}
	if s.Retries > 0 {
		o.MaxAttempts = s.Retries
	}
	if s.Breaker > 0 {
		o.BreakerThreshold = s.Breaker
	}
	if s.Timeout > 0 {
		o.ConnectTimeout = s.Timeout
	}
	if s.Heartbeat > 0 {
		o.Heartbeat = s.Heartbeat
	}
	if s.Restarts > 0 {
		// `restart N`: arm crash recovery. The declarative form assumes an
		// external supervisor restarts the servant at the same address, so
		// Relaunch re-offers it; checkpoint replay stays nil (cold
		// restart) — live state recovery needs the programmatic API.
		o.Restart = &orb.RestartPolicy{
			MaxRestarts: s.Restarts,
			Relaunch:    func(int) (string, error) { return addr, nil },
		}
	}
	return o
}
