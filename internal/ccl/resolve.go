package ccl

import (
	"fmt"

	"repro/internal/repo"
)

// Source is where typed components resolve from. Both the networked
// repository client (*repo.Client) and the LocalSource adapter over an
// in-process repository satisfy it.
type Source interface {
	// Resolve returns the best deposited version of name satisfying the
	// constraint.
	Resolve(name, constraint string) (*repo.Entry, repo.Version, error)
	// Revision reports the store revision the resolutions come from
	// (0 for stores without revisions).
	Revision() (int64, error)
}

var _ Source = (*repo.Client)(nil)

// LocalSource adapts the in-process repository — which holds one version
// per name — to the resolver's Source interface. An entry's version must
// still satisfy the constraint (an unversioned entry counts as 0.0.0), so
// an assembly pinned to `^2.0` fails loudly against a 1.x local deposit
// instead of silently using it.
type LocalSource struct {
	R *repo.Repository
}

// Resolve implements Source.
func (s LocalSource) Resolve(name, constraint string) (*repo.Entry, repo.Version, error) {
	c, err := repo.ParseConstraint(constraint)
	if err != nil {
		return nil, repo.Version{}, err
	}
	e, err := s.R.Retrieve(name)
	if err != nil {
		return nil, repo.Version{}, err
	}
	v := repo.Version{}
	if e.Version != "" {
		if v, err = repo.ParseVersion(e.Version); err != nil {
			return nil, repo.Version{}, fmt.Errorf("local entry %q: %w", name, err)
		}
	}
	if !c.Match(v) {
		return nil, repo.Version{}, fmt.Errorf("%w: %s v%s does not satisfy %q", repo.ErrNoMatch, name, v, c)
	}
	return e, v, nil
}

// Revision implements Source: the in-process repository has no revision
// counter, so its resolutions are never cache-tagged.
func (s LocalSource) Revision() (int64, error) { return 0, nil }

// Resolution is one typed component's resolved (version, entry), the unit
// the lockfile records.
type Resolution struct {
	Instance   string
	Type       string
	Constraint string
	Version    repo.Version
	Entry      *repo.Entry
	// Source is "local" or "repository" — which kind of store resolved
	// it. Addresses are deliberately not recorded: a lockfile must verify
	// identically whatever port the repository happens to listen on.
	Source string
}

// ResolveComponents resolves every typed component of the document, in
// declaration order, against src. Provider components need no resolution
// and are skipped. sourceName is the Resolution.Source tag ("local" or
// "repository").
func ResolveComponents(d *Document, src Source, sourceName string) ([]Resolution, int64, error) {
	rev, err := src.Revision()
	if err != nil {
		return nil, 0, fmt.Errorf("ccl: repository head: %w", err)
	}
	var out []Resolution
	for _, c := range d.Components {
		if c.Type == "" {
			continue
		}
		e, v, err := src.Resolve(c.Type, c.Constraint)
		if err != nil {
			return nil, 0, fmt.Errorf("%s: resolving %s (%s): %w", d.pos(c.Line), c.Name, c.Type, err)
		}
		out = append(out, Resolution{
			Instance:   c.Name,
			Type:       c.Type,
			Constraint: c.Constraint,
			Version:    v,
			Entry:      e,
			Source:     sourceName,
		})
	}
	return out, rev, nil
}
