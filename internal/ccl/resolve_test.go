package ccl

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/repo"
)

func newESIApp(t *testing.T) *core.App {
	t.Helper()
	app, err := core.NewApp(core.Options{WithESI: true})
	if err != nil {
		t.Fatal(err)
	}
	return app
}

func TestLocalSourceResolve(t *testing.T) {
	app := newESIApp(t)
	src := LocalSource{R: app.Repo}

	e, v, err := src.Resolve("esi.SolverComponent.cg", "^1.0")
	if err != nil {
		t.Fatal(err)
	}
	if v.String() != "1.0.0" || e.Name != "esi.SolverComponent.cg" {
		t.Fatalf("resolved %s@%s", e.Name, v)
	}
	if _, _, err := src.Resolve("esi.SolverComponent.cg", "^2.0"); !errors.Is(err, repo.ErrNoMatch) {
		t.Fatalf("^2.0 against a 1.0 deposit: %v", err)
	}
	if _, _, err := src.Resolve("no.Such", ""); !errors.Is(err, repo.ErrNotFound) {
		t.Fatalf("unknown type: %v", err)
	}
	if _, _, err := src.Resolve("esi.SolverComponent.cg", "^^"); err == nil {
		t.Fatal("bad constraint accepted")
	}

	// Unversioned local deposits count as 0.0.0.
	if err := app.Repo.Deposit(repo.Entry{Name: "x.Bare", Description: "unversioned"}); err != nil {
		t.Fatal(err)
	}
	if _, v, err := src.Resolve("x.Bare", ""); err != nil || v.String() != "0.0.0" {
		t.Fatalf("unversioned: v=%s err=%v", v, err)
	}
	if _, _, err := src.Resolve("x.Bare", "^1.0"); !errors.Is(err, repo.ErrNoMatch) {
		t.Fatalf("^1.0 against unversioned: %v", err)
	}
	if rev, err := src.Revision(); rev != 0 || err != nil {
		t.Fatalf("local revision = %d, %v", rev, err)
	}
}

func TestResolveComponents(t *testing.T) {
	app := newESIApp(t)
	doc, err := Parse(`ccl 1
component op {
  provider poisson
}
component solver {
  type esi.SolverComponent.gmres
  version >=1.0 <2.0
}
`, ParseOptions{Path: "t.ccl"})
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(doc); err != nil {
		t.Fatal(err)
	}
	res, rev, err := ResolveComponents(doc, LocalSource{R: app.Repo}, "local")
	if err != nil {
		t.Fatal(err)
	}
	if rev != 0 || len(res) != 1 {
		t.Fatalf("rev=%d res=%v", rev, res)
	}
	r := res[0]
	if r.Instance != "solver" || r.Type != "esi.SolverComponent.gmres" ||
		r.Version.String() != "1.0.0" || r.Source != "local" || r.Entry == nil {
		t.Fatalf("resolution %+v", r)
	}

	// A failing constraint reports the declaration position.
	doc.Components[1].Constraint = "^3"
	if _, _, err := ResolveComponents(doc, LocalSource{R: app.Repo}, "local"); !errors.Is(err, repo.ErrNoMatch) {
		t.Fatalf("want ErrNoMatch, got %v", err)
	}
}

func TestLockEncodeDeterministic(t *testing.T) {
	doc := &Document{Name: "a"}
	res := []Resolution{
		{Instance: "z", Type: "t.Z", Constraint: "^1", Version: repo.Version{Major: 1}, Source: "local"},
		{Instance: "a", Type: "t.A", Version: repo.Version{Major: 2}, Source: "local"},
	}
	l := NewLock(doc, res, 7)
	if l.Components[0].Instance != "a" || l.Components[1].Instance != "z" {
		t.Fatalf("lock not sorted by instance: %+v", l.Components)
	}
	if !bytes.Equal(l.Encode(), NewLock(doc, res, 7).Encode()) {
		t.Fatal("encoding not deterministic")
	}
	back, err := DecodeLock(l.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Components) != 2 || back.Components[1].Version != "1.0.0" || back.Revision != 7 {
		t.Fatalf("round trip %+v", back)
	}
	if _, err := DecodeLock([]byte("{")); err == nil {
		t.Fatal("truncated lockfile accepted")
	}
}

func TestVerifyOrCreate(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "app.ccl.lock")
	want := NewLock(&Document{Name: "app"}, []Resolution{
		{Instance: "s", Type: "t.S", Constraint: "^1.0", Version: repo.Version{Major: 1, Minor: 2}, Source: "repository"},
	}, 3)

	created, err := VerifyOrCreate(path, want)
	if err != nil || !created {
		t.Fatalf("first verify: created=%v err=%v", created, err)
	}
	data, err := os.ReadFile(path)
	if err != nil || !bytes.Equal(data, want.Encode()) {
		t.Fatalf("lockfile content mismatch: %v", err)
	}

	// Same resolution at a different revision still verifies: revisions
	// are informational.
	again := NewLock(&Document{Name: "app"}, []Resolution{
		{Instance: "s", Type: "t.S", Constraint: "^1.0", Version: repo.Version{Major: 1, Minor: 2}, Source: "repository"},
	}, 99)
	if created, err := VerifyOrCreate(path, again); err != nil || created {
		t.Fatalf("re-verify: created=%v err=%v", created, err)
	}

	// A shifted version is a mismatch.
	shifted := NewLock(&Document{Name: "app"}, []Resolution{
		{Instance: "s", Type: "t.S", Constraint: "^1.0", Version: repo.Version{Major: 1, Minor: 3}, Source: "repository"},
	}, 99)
	if _, err := VerifyOrCreate(path, shifted); !errors.Is(err, ErrLockMismatch) {
		t.Fatalf("version shift: %v", err)
	}

	// A different component count is a mismatch.
	if _, err := VerifyOrCreate(path, NewLock(&Document{Name: "app"}, nil, 0)); !errors.Is(err, ErrLockMismatch) {
		t.Fatalf("count shift: %v", err)
	}

	// Garbage on disk is a decode error, not a silent re-lock.
	if err := os.WriteFile(path, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := VerifyOrCreate(path, want); err == nil {
		t.Fatal("corrupt lockfile accepted")
	}
}
