package ccl

import (
	"errors"
	"fmt"

	"repro/internal/cca"
	ccoll "repro/internal/cca/collective"
	"repro/internal/esi"
	"repro/internal/linalg"
	"repro/internal/repo"
)

// A Provider builds a component from a config block. Providers exist for
// implementations whose constructors need arguments a deposited factory
// cannot supply — an operator component wraps a particular matrix, and
// factories never serialize — so a ccl document can still declare them
// declaratively (`provider advdiff` instead of Go code).
type Provider func(cfg Config) (cca.Component, error)

// BuiltinProviders returns the standard provider table:
//
//	poisson    2-D Poisson operator; config: n (grid side, required)
//	advdiff    2-D advection-diffusion operator; config: n (required),
//	           vx (default 8), vy (default 4)
//	laplace1d  1-D Laplacian operator; config: n (required)
//	consumer   a generic consuming component holding one uses port;
//	           config: port (default "in"), type (default the collective
//	           pull type)
//
// Compile merges Options.Providers over this table, so applications can
// add or shadow providers.
func BuiltinProviders() map[string]Provider {
	return map[string]Provider{
		"poisson": func(cfg Config) (cca.Component, error) {
			n, err := requireN(cfg)
			if err != nil {
				return nil, err
			}
			return esi.NewOperatorComponent(linalg.Poisson2D(n, n)), nil
		},
		"advdiff": func(cfg Config) (cca.Component, error) {
			n, err := requireN(cfg)
			if err != nil {
				return nil, err
			}
			vx, err := cfg.Float("vx", 8)
			if err != nil {
				return nil, err
			}
			vy, err := cfg.Float("vy", 4)
			if err != nil {
				return nil, err
			}
			return esi.NewOperatorComponent(linalg.AdvDiff2D(n, n, vx, vy)), nil
		},
		"laplace1d": func(cfg Config) (cca.Component, error) {
			n, err := requireN(cfg)
			if err != nil {
				return nil, err
			}
			return esi.NewOperatorComponent(linalg.Laplace1D(n)), nil
		},
		"consumer": func(cfg Config) (cca.Component, error) {
			port, _ := cfg.Get("port")
			if port == "" {
				port = "in"
			}
			typ, _ := cfg.Get("type")
			if typ == "" {
				typ = ccoll.PullPortType
			}
			for _, kv := range cfg {
				if kv.Key != "port" && kv.Key != "type" {
					return nil, fmt.Errorf("%w: %q (consumer config: port, type)", ErrUnknownKey, kv.Key)
				}
			}
			return NewConsumer(port, typ), nil
		},
	}
}

func requireN(cfg Config) (int, error) {
	n, err := cfg.Int("n", 0)
	if err != nil {
		return 0, err
	}
	if n < 1 {
		return 0, fmt.Errorf("%w: config needs `n` >= 1", ErrMissingKey)
	}
	return n, nil
}

// Consumer is a generic consuming component: it registers a single uses
// port and gives drivers framework-sanctioned access to whatever provider
// it is connected to. The repository entry ConsumerType deposits it so
// assemblies can declare consumers by type through a repository (the
// distviz pipeline's viz tool is one).
type Consumer struct {
	PortName string
	PortType string
	svc      cca.Services
}

// NewConsumer creates a consumer with one uses port.
func NewConsumer(port, typ string) *Consumer {
	return &Consumer{PortName: port, PortType: typ}
}

// SetServices implements cca.Component.
func (c *Consumer) SetServices(svc cca.Services) error {
	c.svc = svc
	return svc.RegisterUsesPort(cca.PortInfo{Name: c.PortName, Type: c.PortType})
}

// Port fetches the connected provider through the framework (GetPort);
// pair with Release.
func (c *Consumer) Port() (cca.Port, error) {
	if c.svc == nil {
		return nil, fmt.Errorf("ccl: consumer not installed")
	}
	return c.svc.GetPort(c.PortName)
}

// Release releases the port taken by Port.
func (c *Consumer) Release() {
	if c.svc != nil {
		c.svc.ReleasePort(c.PortName)
	}
}

// ConsumerType is the repository type name DepositConsumer registers.
const ConsumerType = "cca.DistArrayConsumer"

// consumerSIDL re-opens the cca.ports package with the consumer-side pull
// interface, so repositories can type-check the consumer's uses port.
const consumerSIDL = `
// DistArrayPull is the consumer-side face of a collective DistArray
// connection (repro/internal/cca/collective.PullPort): pull the provider's
// current epoch, redistributed into this cohort's data map.
package cca.ports version 0.5 {
  interface DistArrayPull {
    int globalLength();
    int ranks();
    int localLength(in int rank);
  }
}
`

// DepositConsumer deposits the ConsumerType entry (a consumer with uses
// port "in" of the collective pull type) into a repository. Depositing
// twice is a no-op, so every process that might compile a consumer-bearing
// assembly can call it unconditionally.
func DepositConsumer(r *repo.Repository) error {
	err := r.Deposit(repo.Entry{
		Name:        ConsumerType,
		Version:     "0.1",
		Description: "generic consumer of a collective DistArray pull port",
		SIDL:        consumerSIDL,
		Uses:        []repo.PortSpec{{Name: "in", Type: ccoll.PullPortType}},
		Flavor:      cca.FlavorInProcess | cca.FlavorDistributed,
		Factory:     func() cca.Component { return NewConsumer("in", ccoll.PullPortType) },
	})
	if errors.Is(err, repo.ErrExists) {
		return nil
	}
	return err
}
