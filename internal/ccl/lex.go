package ccl

import (
	"fmt"
	"strings"
)

// The lexer is line-oriented: a ccl document is a sequence of lines, each
// holding at most one statement (a header, a stanza open, a `}`, a
// setting, or a connect). splitLine turns one line into tokens.
//
// Token shapes:
//
//   - bare words: letters, digits, and . _ + : / - (so type names like
//     esi.SolverComponent.bicgstab, constraints like >=1.2, durations like
//     200ms, and addresses lex as single tokens)
//   - quoted strings: "..." with \" \\ \n \t escapes; ${NAME} interpolates
//     a variable (quoted strings are the only place interpolation happens)
//   - punctuation: { } and the connect arrow ->
//   - # starts a comment running to end of line
type token struct {
	text   string
	quoted bool
}

// isBare reports whether r may appear in a bare word.
func isBare(r rune) bool {
	switch {
	case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
		return true
	}
	return strings.ContainsRune("._+:/-<>=^~*,", r)
}

// splitLine tokenizes one source line, interpolating ${NAME} inside quoted
// strings from vars.
func splitLine(pos string, line string, vars map[string]string) ([]token, error) {
	var toks []token
	rs := []rune(line)
	i := 0
	for i < len(rs) {
		r := rs[i]
		switch {
		case r == ' ' || r == '\t' || r == '\r':
			i++
		case r == '#':
			return toks, nil
		case r == '{' || r == '}':
			toks = append(toks, token{text: string(r)})
			i++
		case r == '"':
			text, n, err := lexString(pos, rs[i:], vars)
			if err != nil {
				return nil, err
			}
			toks = append(toks, token{text: text, quoted: true})
			i += n
		case isBare(r):
			start := i
			for i < len(rs) && isBare(rs[i]) {
				// `->` terminates a bare word and lexes as the arrow; a
				// lone `-` inside a word (shard lists, "in-process") does
				// not.
				if rs[i] == '-' && i+1 < len(rs) && rs[i+1] == '>' {
					break
				}
				i++
			}
			if i > start {
				toks = append(toks, token{text: string(rs[start:i])})
			}
			if i < len(rs) && rs[i] == '-' { // the arrow
				toks = append(toks, token{text: "->"})
				i += 2
			}
		default:
			return nil, fmt.Errorf("%s: %w: unexpected character %q", pos, ErrSyntax, string(r))
		}
	}
	return toks, nil
}

// lexString scans a quoted string starting at rs[0] == '"', returning the
// interpolated text and the number of runes consumed.
func lexString(pos string, rs []rune, vars map[string]string) (string, int, error) {
	var b strings.Builder
	i := 1
	for i < len(rs) {
		r := rs[i]
		switch r {
		case '"':
			return b.String(), i + 1, nil
		case '\\':
			if i+1 >= len(rs) {
				return "", 0, fmt.Errorf("%s: %w: trailing backslash in string", pos, ErrSyntax)
			}
			i++
			switch rs[i] {
			case '"':
				b.WriteRune('"')
			case '\\':
				b.WriteRune('\\')
			case 'n':
				b.WriteRune('\n')
			case 't':
				b.WriteRune('\t')
			case '$':
				b.WriteRune('$')
			default:
				return "", 0, fmt.Errorf("%s: %w: unknown escape \\%s", pos, ErrSyntax, string(rs[i]))
			}
			i++
		case '$':
			if i+1 < len(rs) && rs[i+1] == '{' {
				end := -1
				for j := i + 2; j < len(rs); j++ {
					if rs[j] == '}' {
						end = j
						break
					}
				}
				if end < 0 {
					return "", 0, fmt.Errorf("%s: %w: unterminated ${...}", pos, ErrSyntax)
				}
				name := string(rs[i+2 : end])
				v, ok := vars[name]
				if !ok {
					return "", 0, fmt.Errorf("%s: %w: ${%s}", pos, ErrUnknownVar, name)
				}
				b.WriteString(v)
				i = end + 1
				continue
			}
			b.WriteRune('$')
			i++
		default:
			b.WriteRune(r)
			i++
		}
	}
	return "", 0, fmt.Errorf("%s: %w: unterminated string", pos, ErrSyntax)
}
