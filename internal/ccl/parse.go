package ccl

import (
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"
)

// ParseOptions configures Parse.
type ParseOptions struct {
	// Path is recorded in the document and used in error positions.
	Path string
	// Vars binds ${NAME} interpolations. Missing names are ErrUnknownVar.
	Vars map[string]string
}

// Load reads, parses, and validates an assembly file.
func Load(path string, vars map[string]string) (*Document, error) {
	src, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	doc, err := Parse(string(src), ParseOptions{Path: path, Vars: vars})
	if err != nil {
		return nil, err
	}
	if err := Validate(doc); err != nil {
		return nil, err
	}
	return doc, nil
}

// Parse parses a ccl source into a Document. Parse checks grammar and
// value shapes (numbers, durations); cross-cutting rules (required keys,
// duplicate instances, dangling connects) are Validate's job.
func Parse(src string, opts ParseOptions) (*Document, error) {
	p := &parser{
		doc:  &Document{Path: opts.Path},
		vars: opts.Vars,
	}
	for n, raw := range strings.Split(src, "\n") {
		if err := p.line(n+1, raw); err != nil {
			return nil, err
		}
	}
	if len(p.stack) > 0 {
		return nil, fmt.Errorf("%s: %w: unclosed %q stanza", p.doc.pos(p.openLine), ErrSyntax, p.stack[len(p.stack)-1])
	}
	if !p.sawHeader {
		return nil, fmt.Errorf("%s: %w: want `ccl %d` as the first statement", p.doc.pos(1), ErrHeader, LanguageVersion)
	}
	return p.doc, nil
}

type parser struct {
	doc       *Document
	vars      map[string]string
	sawHeader bool
	// stack holds the open stanza context, e.g. ["component"] or
	// ["remote", "supervise"].
	stack    []string
	openLine int

	curComponent *ComponentDecl
	curRemote    *RemoteDecl
	curExport    *ExportDecl
}

func (p *parser) errf(line int, base error, format string, args ...any) error {
	return fmt.Errorf("%s: %w: %s", p.doc.pos(line), base, fmt.Sprintf(format, args...))
}

// line consumes one source line.
func (p *parser) line(n int, raw string) error {
	toks, err := splitLine(p.doc.pos(n), raw, p.vars)
	if err != nil {
		return err
	}
	if len(toks) == 0 {
		return nil
	}
	if !p.sawHeader {
		if len(toks) != 2 || toks[0].text != "ccl" || toks[0].quoted {
			return p.errf(n, ErrHeader, "want `ccl %d` as the first statement", LanguageVersion)
		}
		v, err := strconv.Atoi(toks[1].text)
		if err != nil || v != LanguageVersion {
			return p.errf(n, ErrHeader, "unsupported language version %q (this parser reads %d)", toks[1].text, LanguageVersion)
		}
		p.doc.Version = v
		p.sawHeader = true
		return nil
	}

	// Stanza close.
	if toks[0].text == "}" && !toks[0].quoted {
		if len(toks) != 1 {
			return p.errf(n, ErrSyntax, "`}` must stand alone")
		}
		if len(p.stack) == 0 {
			return p.errf(n, ErrSyntax, "unmatched `}`")
		}
		p.stack = p.stack[:len(p.stack)-1]
		if len(p.stack) == 0 {
			p.curComponent, p.curRemote, p.curExport = nil, nil, nil
		}
		return nil
	}

	// Stanza open: last token is `{`.
	if last := toks[len(toks)-1]; last.text == "{" && !last.quoted {
		return p.open(n, toks[:len(toks)-1])
	}

	// Statement.
	if toks[0].quoted {
		return p.errf(n, ErrSyntax, "setting key must be a bare word, got string %q", toks[0].text)
	}
	switch p.context() {
	case "":
		if toks[0].text == "connect" && !toks[0].quoted {
			return p.connect(n, toks)
		}
		return p.errf(n, ErrSyntax, "expected a stanza or `connect` at top level, got %q", toks[0].text)
	case "app":
		return p.appKey(n, toks)
	case "repository":
		return p.repositoryKey(n, toks)
	case "component":
		return p.componentKey(n, toks)
	case "component/config":
		return p.configKey(n, toks)
	case "remote":
		return p.remoteKey(n, toks)
	case "remote/dist":
		return p.distKey(n, toks)
	case "remote/supervise":
		return p.superviseKey(n, toks)
	case "export":
		return p.exportKey(n, toks)
	default:
		return p.errf(n, ErrSyntax, "statement in unexpected context %q", p.context())
	}
}

func (p *parser) context() string {
	return strings.Join(p.stack, "/")
}

// open handles a stanza-open line (tokens before the trailing `{`).
func (p *parser) open(n int, toks []token) error {
	if len(toks) == 0 {
		return p.errf(n, ErrSyntax, "`{` needs a stanza keyword")
	}
	kw := toks[0].text
	if toks[0].quoted {
		return p.errf(n, ErrSyntax, "stanza keyword must be bare, got string %q", kw)
	}
	name := ""
	if len(toks) == 2 {
		if toks[1].quoted {
			return p.errf(n, ErrSyntax, "stanza name must be a bare word, got string %q", toks[1].text)
		}
		name = toks[1].text
	} else if len(toks) > 2 {
		return p.errf(n, ErrSyntax, "stanza `%s` takes at most one name before `{`", kw)
	}
	switch p.context() {
	case "":
		switch kw {
		case "app":
			if name == "" {
				return p.errf(n, ErrMissingKey, "app stanza needs a name: `app NAME {`")
			}
			if p.doc.Name != "" {
				return p.errf(n, ErrDuplicate, "second app stanza (first named %q)", p.doc.Name)
			}
			p.doc.Name = name
		case "repository":
			if name != "" {
				return p.errf(n, ErrSyntax, "repository stanza takes no name")
			}
			if p.doc.Repository != nil {
				return p.errf(n, ErrDuplicate, "second repository stanza (line %d has the first)", p.doc.Repository.Line)
			}
			p.doc.Repository = &RepositoryDecl{Line: n}
		case "component":
			if name == "" {
				return p.errf(n, ErrMissingKey, "component stanza needs an instance name: `component NAME {`")
			}
			p.curComponent = &ComponentDecl{Name: name, Line: n}
			p.doc.Components = append(p.doc.Components, p.curComponent)
		case "remote":
			if name == "" {
				return p.errf(n, ErrMissingKey, "remote stanza needs an instance name: `remote NAME {`")
			}
			p.curRemote = &RemoteDecl{Name: name, Line: n}
			p.doc.Remotes = append(p.doc.Remotes, p.curRemote)
		case "export":
			inst, port, ok := cutEndpoint(name)
			if name == "" || !ok {
				return p.errf(n, ErrSyntax, "export stanza needs INSTANCE.PORT: `export solver.A {`")
			}
			p.curExport = &ExportDecl{Instance: inst, Port: port, Line: n}
			p.doc.Exports = append(p.doc.Exports, p.curExport)
		default:
			return p.errf(n, ErrUnknownStanza, "%q (top-level stanzas: app, repository, component, remote, export)", kw)
		}
	case "component":
		if kw != "config" || name != "" {
			return p.errf(n, ErrUnknownStanza, "%q inside component (only `config {` nests here)", kw)
		}
	case "remote":
		switch kw {
		case "dist":
			if p.curRemote.Dist != nil {
				return p.errf(n, ErrDuplicate, "second dist block")
			}
			p.curRemote.Dist = &DistDecl{Line: n}
		case "supervise":
			if p.curRemote.Supervise != nil {
				return p.errf(n, ErrDuplicate, "second supervise block")
			}
			p.curRemote.Supervise = &SuperviseDecl{Line: n}
		default:
			return p.errf(n, ErrUnknownStanza, "%q inside remote (only `dist {` and `supervise {` nest here)", kw)
		}
		if name != "" {
			return p.errf(n, ErrSyntax, "%s block takes no name", kw)
		}
	default:
		return p.errf(n, ErrUnknownStanza, "%q cannot nest inside %s", kw, p.context())
	}
	p.stack = append(p.stack, kw)
	p.openLine = n
	return nil
}

// value enforces a `key value` statement shape and returns the value.
func (p *parser) value(n int, toks []token) (string, error) {
	if len(toks) != 2 {
		return "", p.errf(n, ErrSyntax, "`%s` takes exactly one value", toks[0].text)
	}
	return toks[1].text, nil
}

// intValue parses a `key N` statement.
func (p *parser) intValue(n int, toks []token) (int, error) {
	s, err := p.value(n, toks)
	if err != nil {
		return 0, err
	}
	v, err := strconv.Atoi(s)
	if err != nil {
		return 0, p.errf(n, ErrBadValue, "%s = %q is not an integer", toks[0].text, s)
	}
	return v, nil
}

// durValue parses a `key DURATION` statement (Go duration syntax: 5s,
// 200ms, 1m30s).
func (p *parser) durValue(n int, toks []token) (time.Duration, error) {
	s, err := p.value(n, toks)
	if err != nil {
		return 0, err
	}
	d, err := time.ParseDuration(s)
	if err != nil || d < 0 {
		return 0, p.errf(n, ErrBadValue, "%s = %q is not a duration (use 5s, 200ms, ...)", toks[0].text, s)
	}
	return d, nil
}

func (p *parser) appKey(n int, toks []token) error {
	switch toks[0].text {
	case "description":
		v, err := p.value(n, toks)
		if err != nil {
			return err
		}
		p.doc.Description = v
		return nil
	default:
		return p.errf(n, ErrUnknownKey, "%q in app (keys: description)", toks[0].text)
	}
}

func (p *parser) repositoryKey(n int, toks []token) error {
	switch toks[0].text {
	case "address":
		v, err := p.value(n, toks)
		if err != nil {
			return err
		}
		p.doc.Repository.Address = v
		return nil
	default:
		return p.errf(n, ErrUnknownKey, "%q in repository (keys: address)", toks[0].text)
	}
}

func (p *parser) componentKey(n int, toks []token) error {
	c := p.curComponent
	switch toks[0].text {
	case "type":
		v, err := p.value(n, toks)
		if err != nil {
			return err
		}
		c.Type = v
		return nil
	case "version":
		// A constraint conjunction has internal spaces (`>=1.2 <2`), so
		// the version key joins its value tokens.
		if len(toks) < 2 {
			return p.errf(n, ErrSyntax, "`version` takes a constraint")
		}
		parts := make([]string, 0, len(toks)-1)
		for _, t := range toks[1:] {
			parts = append(parts, t.text)
		}
		c.Constraint = strings.Join(parts, " ")
		return nil
	case "provider":
		v, err := p.value(n, toks)
		if err != nil {
			return err
		}
		c.Provider = v
		return nil
	default:
		return p.errf(n, ErrUnknownKey, "%q in component (keys: type, version, provider, config)", toks[0].text)
	}
}

func (p *parser) configKey(n int, toks []token) error {
	v, err := p.value(n, toks)
	if err != nil {
		return err
	}
	p.curComponent.Config = append(p.curComponent.Config, KV{Key: toks[0].text, Value: v, Line: n})
	return nil
}

func (p *parser) remoteKey(n int, toks []token) error {
	r := p.curRemote
	v, err := p.value(n, toks)
	if err != nil {
		return err
	}
	switch toks[0].text {
	case "address":
		r.Address = v
	case "key":
		r.Key = v
	case "port":
		r.Port = v
	case "type":
		r.Type = v
	default:
		return p.errf(n, ErrUnknownKey, "%q in remote (keys: address, key, port, type, dist, supervise)", toks[0].text)
	}
	return nil
}

func (p *parser) distKey(n int, toks []token) error {
	d := p.curRemote.Dist
	switch toks[0].text {
	case "map":
		v, err := p.value(n, toks)
		if err != nil {
			return err
		}
		d.Map = v
		return nil
	case "length", "ranks", "block":
		v, err := p.intValue(n, toks)
		if err != nil {
			return err
		}
		switch toks[0].text {
		case "length":
			d.Length = v
		case "ranks":
			d.Ranks = v
		case "block":
			d.Block = v
		}
		return nil
	default:
		return p.errf(n, ErrUnknownKey, "%q in dist (keys: map, length, ranks, block)", toks[0].text)
	}
}

func (p *parser) superviseKey(n int, toks []token) error {
	s := p.curRemote.Supervise
	switch toks[0].text {
	case "retries", "breaker", "restart":
		v, err := p.intValue(n, toks)
		if err != nil {
			return err
		}
		if v < 0 {
			return p.errf(n, ErrBadValue, "%s = %d is negative", toks[0].text, v)
		}
		switch toks[0].text {
		case "retries":
			s.Retries = v
		case "breaker":
			s.Breaker = v
		case "restart":
			s.Restarts = v
		}
		return nil
	case "timeout", "heartbeat":
		d, err := p.durValue(n, toks)
		if err != nil {
			return err
		}
		if toks[0].text == "timeout" {
			s.Timeout = d
		} else {
			s.Heartbeat = d
		}
		return nil
	default:
		return p.errf(n, ErrUnknownKey, "%q in supervise (keys: retries, breaker, timeout, heartbeat, restart)", toks[0].text)
	}
}

func (p *parser) exportKey(n int, toks []token) error {
	e := p.curExport
	switch toks[0].text {
	case "address":
		v, err := p.value(n, toks)
		if err != nil {
			return err
		}
		e.Address = v
		return nil
	case "shards":
		v, err := p.intValue(n, toks)
		if err != nil {
			return err
		}
		e.Shards = v
		return nil
	default:
		return p.errf(n, ErrUnknownKey, "%q in export (keys: address, shards)", toks[0].text)
	}
}

// connect parses `connect USER.USES -> PROVIDER.PROVIDES`.
func (p *parser) connect(n int, toks []token) error {
	if len(toks) != 4 || toks[2].text != "->" || toks[2].quoted {
		return p.errf(n, ErrSyntax, "want `connect USER.USES -> PROVIDER.PROVIDES`")
	}
	if toks[1].quoted || toks[3].quoted {
		return p.errf(n, ErrSyntax, "connect endpoints must be bare words")
	}
	user, uses, ok1 := cutEndpoint(toks[1].text)
	prov, provides, ok2 := cutEndpoint(toks[3].text)
	if !ok1 || !ok2 {
		return p.errf(n, ErrSyntax, "connect endpoints must be INSTANCE.PORT")
	}
	p.doc.Connects = append(p.doc.Connects, &ConnectDecl{
		User: user, UsesPort: uses, Provider: prov, ProvidesPort: provides, Line: n,
	})
	return nil
}

// cutEndpoint splits INSTANCE.PORT at the first dot (instance names must
// not contain dots; port names may).
func cutEndpoint(s string) (instance, port string, ok bool) {
	instance, port, ok = strings.Cut(s, ".")
	if !ok || instance == "" || port == "" {
		return "", "", false
	}
	return instance, port, true
}
