package ccl

import (
	"fmt"
	"strings"

	ccoll "repro/internal/cca/collective"
	"repro/internal/esi"
	"repro/internal/repo"
)

// Validate checks a parsed document's cross-cutting rules and fills in the
// grammar's defaults (remote port names and port types). It is idempotent;
// Compile calls it again on documents constructed programmatically.
//
// Rules:
//
//   - instance names are unique across components and remotes, contain no
//     dots or slashes, and are not empty
//   - a component declares exactly one of `type` or `provider`; `version`
//     accompanies `type` only, and must parse as a constraint
//   - a remote declares `address` and `key`; a dist block needs map
//     block|cyclic, length > 0, ranks > 0, and block > 0 for cyclic; a
//     dist remote's `type` may only be the collective pull type
//   - exports and connects reference declared instances
func Validate(d *Document) error {
	if d.Version != LanguageVersion {
		return fmt.Errorf("%s: %w: document version %d (this compiler reads %d)",
			d.pos(1), ErrHeader, d.Version, LanguageVersion)
	}
	kind := map[string]string{} // instance -> "component" | "remote"
	declare := func(name string, line int, k string) error {
		if name == "" {
			return fmt.Errorf("%s: %w: empty instance name", d.pos(line), ErrBadValue)
		}
		if strings.ContainsAny(name, "./") {
			return fmt.Errorf("%s: %w: instance name %q may not contain '.' or '/'", d.pos(line), ErrBadValue, name)
		}
		if prev, dup := kind[name]; dup {
			return fmt.Errorf("%s: %w: instance %q already declared as a %s", d.pos(line), ErrDuplicate, name, prev)
		}
		kind[name] = k
		return nil
	}

	for _, c := range d.Components {
		if err := declare(c.Name, c.Line, "component"); err != nil {
			return err
		}
		switch {
		case c.Type == "" && c.Provider == "":
			return fmt.Errorf("%s: %w: component %q needs `type` or `provider`", d.pos(c.Line), ErrMissingKey, c.Name)
		case c.Type != "" && c.Provider != "":
			return fmt.Errorf("%s: %w: component %q sets both `type` and `provider`", d.pos(c.Line), ErrBadValue, c.Name)
		case c.Provider != "" && c.Constraint != "":
			return fmt.Errorf("%s: %w: component %q: `version` applies to repository types, not providers", d.pos(c.Line), ErrBadValue, c.Name)
		}
		if _, err := repo.ParseConstraint(c.Constraint); err != nil {
			return fmt.Errorf("%s: component %q: %w", d.pos(c.Line), c.Name, err)
		}
	}

	for _, r := range d.Remotes {
		if err := declare(r.Name, r.Line, "remote"); err != nil {
			return err
		}
		if r.Address == "" {
			return fmt.Errorf("%s: %w: remote %q needs `address`", d.pos(r.Line), ErrMissingKey, r.Name)
		}
		if r.Key == "" {
			return fmt.Errorf("%s: %w: remote %q needs `key` (the exported object key or published array name)", d.pos(r.Line), ErrMissingKey, r.Name)
		}
		if dd := r.Dist; dd != nil {
			switch dd.Map {
			case "block":
				if dd.Block != 0 {
					return fmt.Errorf("%s: %w: `block` only applies to map cyclic", d.pos(dd.Line), ErrBadValue)
				}
			case "cyclic":
				if dd.Block <= 0 {
					return fmt.Errorf("%s: %w: map cyclic needs `block` > 0", d.pos(dd.Line), ErrMissingKey)
				}
			case "":
				return fmt.Errorf("%s: %w: dist block needs `map` (block or cyclic)", d.pos(dd.Line), ErrMissingKey)
			default:
				return fmt.Errorf("%s: %w: map %q (want block or cyclic)", d.pos(dd.Line), ErrBadValue, dd.Map)
			}
			if dd.Length <= 0 {
				return fmt.Errorf("%s: %w: dist block needs `length` > 0", d.pos(dd.Line), ErrMissingKey)
			}
			if dd.Ranks <= 0 {
				return fmt.Errorf("%s: %w: dist block needs `ranks` > 0", d.pos(dd.Line), ErrMissingKey)
			}
			if r.Type != "" && r.Type != ccoll.PullPortType {
				return fmt.Errorf("%s: %w: a dist remote provides %q; `type` %q cannot apply", d.pos(r.Line), ErrBadValue, ccoll.PullPortType, r.Type)
			}
			r.Type = ccoll.PullPortType
			if r.Port == "" {
				r.Port = "data"
			}
		} else {
			if r.Type == "" {
				r.Type = esi.TypeMatrixData
			}
			if r.Port == "" {
				r.Port = "A"
			}
		}
	}

	for _, e := range d.Exports {
		if _, ok := kind[e.Instance]; !ok {
			return fmt.Errorf("%s: %w: export references %q", d.pos(e.Line), ErrUndefined, e.Instance)
		}
		if e.Shards < 0 {
			return fmt.Errorf("%s: %w: shards = %d is negative", d.pos(e.Line), ErrBadValue, e.Shards)
		}
		if e.Address == "" {
			e.Address = "tcp://127.0.0.1:0"
		}
		if e.Shards == 0 {
			e.Shards = 1
		}
	}

	for _, c := range d.Connects {
		if _, ok := kind[c.User]; !ok {
			return fmt.Errorf("%s: %w: connect user %q", d.pos(c.Line), ErrUndefined, c.User)
		}
		if _, ok := kind[c.Provider]; !ok {
			return fmt.Errorf("%s: %w: connect provider %q", d.pos(c.Line), ErrUndefined, c.Provider)
		}
	}
	return nil
}
