// Package ccl implements the reproduction's declarative assembly
// language: a small configuration language in which a whole CCA
// application — which components, at which versions, wired how, living
// where — is one checked-in document instead of a Go program full of
// builder calls. It is the textual face of the paper's Figure 2
// composition tool, patterned after the Cactus/CCA configuration- and
// component-retrieval-language pair.
//
// The pipeline is parse → validate → resolve → lock → compile:
//
//   - Parse (parse.go, lex.go) turns source into a Document AST. The
//     grammar is line-oriented: an app stanza, an optional repository
//     stanza, component/remote/export stanzas, and connect statements,
//     with ${VAR} interpolation inside quoted strings.
//   - Validate (validate.go) enforces cross-cutting rules (unique
//     instances, required keys, declared endpoints) and fills grammar
//     defaults. Every diagnostic wraps one of the package's typed errors
//     with a path:line position.
//   - ResolveComponents (resolve.go) turns each component's (type,
//     version constraint) into a concrete repository entry — against the
//     networked repository service (repro/internal/repo.Client, with its
//     revision-tagged cache) when the document names one, or the local
//     repository otherwise.
//   - The Lock (lockfile.go) records the resolution deterministically;
//     compiles verify an existing lockfile and fail loudly when new
//     deposits would shift what a constraint resolves to.
//   - Compile (compile.go) lowers the document onto the configuration
//     API: Builder.Create and framework connects for components and
//     wirings, supervised remote-port installs (scalar and collective)
//     for remote stanzas, ORB exporters (single or sharded) for exports.
//     Factories never serialize, so typed components always instantiate
//     from locally bound factories; providers (providers.go) cover
//     constructor-argument components like matrix-wrapping operators.
//
// docs/CCL.md is the language reference — full grammar, stanza and key
// vocabulary, version-constraint syntax, worked examples, and an errors
// appendix keyed to this package's typed errors. The checked-in example
// assemblies (examples/solverswap/solverswap.ccl,
// examples/distviz/distviz.ccl) compile through cmd/ccafe's `load`
// command and are held equivalent to their Go-programmed twins by this
// package's end-to-end tests.
package ccl
