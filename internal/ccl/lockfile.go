package ccl

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"sort"
)

// Lock is the deterministic record of an assembly's resolution: every
// typed component pinned to the exact version the resolver chose. The
// compiler verifies an existing lockfile against the fresh resolution —
// deposits that change what a constraint resolves to fail loudly instead
// of silently shifting the assembly — and creates the lockfile on first
// compile.
type Lock struct {
	// App is the assembly name, informational.
	App string `json:"app,omitempty"`
	// Revision is the repository revision the resolution was made at —
	// informational only (verification compares components, not
	// revisions, so unrelated deposits do not invalidate a lockfile).
	Revision int64 `json:"revision"`
	// Components is sorted by instance name.
	Components []LockEntry `json:"components"`
}

// LockEntry pins one typed component instance.
type LockEntry struct {
	Instance   string `json:"instance"`
	Type       string `json:"type"`
	Constraint string `json:"constraint,omitempty"`
	Version    string `json:"version"`
	// Source is "local" or "repository" (never an address — lockfiles
	// must verify identically across listen ports).
	Source string `json:"source"`
}

// NewLock builds the lock for a document's resolutions.
func NewLock(d *Document, res []Resolution, revision int64) *Lock {
	l := &Lock{App: d.Name, Revision: revision}
	for _, r := range res {
		l.Components = append(l.Components, LockEntry{
			Instance:   r.Instance,
			Type:       r.Type,
			Constraint: r.Constraint,
			Version:    r.Version.String(),
			Source:     r.Source,
		})
	}
	sort.Slice(l.Components, func(i, j int) bool {
		return l.Components[i].Instance < l.Components[j].Instance
	})
	return l
}

// Encode renders the lock as deterministic indented JSON with a trailing
// newline (byte-identical for identical resolutions, so lockfiles diff
// cleanly).
func (l *Lock) Encode() []byte {
	b, err := json.MarshalIndent(l, "", "  ")
	if err != nil {
		panic("ccl: lock encode: " + err.Error()) // no unmarshalable fields
	}
	return append(b, '\n')
}

// DecodeLock parses a lockfile.
func DecodeLock(data []byte) (*Lock, error) {
	var l Lock
	if err := json.Unmarshal(data, &l); err != nil {
		return nil, fmt.Errorf("ccl: lockfile: %w", err)
	}
	return &l, nil
}

// DefaultLockPath is the lockfile path for an assembly file: the source
// path plus ".lock".
func DefaultLockPath(cclPath string) string { return cclPath + ".lock" }

// VerifyOrCreate checks the lockfile at path against want, writing it when
// absent. It returns created=true when the file was written. A mismatch —
// different instances, types, constraints, versions, or sources — is
// ErrLockMismatch; revisions are informational and never compared.
func VerifyOrCreate(path string, want *Lock) (created bool, err error) {
	data, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		if werr := os.WriteFile(path, want.Encode(), 0o644); werr != nil {
			return false, fmt.Errorf("ccl: writing lockfile: %w", werr)
		}
		return true, nil
	}
	if err != nil {
		return false, fmt.Errorf("ccl: reading lockfile: %w", err)
	}
	have, err := DecodeLock(data)
	if err != nil {
		return false, err
	}
	if err := compareLocks(path, have, want); err != nil {
		return false, err
	}
	return false, nil
}

func compareLocks(path string, have, want *Lock) error {
	if len(have.Components) != len(want.Components) {
		return fmt.Errorf("%w: %s pins %d components, resolution has %d",
			ErrLockMismatch, path, len(have.Components), len(want.Components))
	}
	for i, h := range have.Components {
		w := want.Components[i]
		if h != w {
			return fmt.Errorf("%w: %s pins %s %s@%s (constraint %q, %s), resolution is %s %s@%s (constraint %q, %s) — delete the lockfile to re-lock or pin the constraint",
				ErrLockMismatch, path,
				h.Instance, h.Type, h.Version, h.Constraint, h.Source,
				w.Instance, w.Type, w.Version, w.Constraint, w.Source)
		}
	}
	return nil
}
