package ccl

import (
	"errors"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// TestParseGolden parses each testdata/*.ccl, validates it, and compares
// the canonical formatting against the checked-in .golden file. The
// goldens double as the fuzz corpus and as worked grammar examples.
func TestParseGolden(t *testing.T) {
	files, err := filepath.Glob("testdata/*.ccl")
	if err != nil || len(files) == 0 {
		t.Fatalf("no golden inputs: %v", err)
	}
	vars := goldenVars()
	for _, path := range files {
		t.Run(filepath.Base(path), func(t *testing.T) {
			src, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			doc, err := Parse(string(src), ParseOptions{Path: path, Vars: vars})
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			if err := Validate(doc); err != nil {
				t.Fatalf("validate: %v", err)
			}
			got := Format(doc)

			// Canonical formatting must be a fixed point: reparse and
			// reformat reproduce it byte for byte.
			doc2, err := Parse(got, ParseOptions{Path: path})
			if err != nil {
				t.Fatalf("reparse of formatted output: %v\n%s", err, got)
			}
			if err := Validate(doc2); err != nil {
				t.Fatalf("revalidate: %v", err)
			}
			if again := Format(doc2); again != got {
				t.Fatalf("format not idempotent:\n--- first\n%s\n--- second\n%s", got, again)
			}

			golden := strings.TrimSuffix(path, ".ccl") + ".golden"
			if *update {
				if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("missing golden (run with -update): %v", err)
			}
			if got != string(want) {
				t.Errorf("formatting differs from %s:\n--- got\n%s\n--- want\n%s", golden, got, want)
			}
		})
	}
}

// goldenVars binds the variables the golden inputs interpolate.
func goldenVars() map[string]string {
	return map[string]string{
		"SIM_ADDR":  "127.0.0.1:7001",
		"REPO_ADDR": "tcp://127.0.0.1:7070",
	}
}

// TestParseExamples parses the checked-in example assemblies.
func TestParseExamples(t *testing.T) {
	for _, path := range []string{
		"../../examples/solverswap/solverswap.ccl",
		"../../examples/distviz/distviz.ccl",
	} {
		if _, err := Load(path, goldenVars()); err != nil {
			t.Errorf("%s: %v", path, err)
		}
	}
}

// TestParseErrors is the error-class table: one (or more) source per
// typed error the parser and validator can produce, asserting the class
// via errors.Is and the position prefix.
func TestParseErrors(t *testing.T) {
	const h = "ccl 1\n"
	cases := []struct {
		name string
		src  string
		want error
	}{
		{"empty", "", ErrHeader},
		{"comment only", "# nothing\n", ErrHeader},
		{"bad header keyword", "assembly 1\n", ErrHeader},
		{"unsupported version", "ccl 2\n", ErrHeader},
		{"document version", "", ErrHeader}, // Validate path checked below

		{"unterminated string", h + "app a {\n  description \"oops\n}\n", ErrSyntax},
		{"unknown escape", h + "app a {\n  description \"\\q\"\n}\n", ErrSyntax},
		{"unterminated var", h + "app a {\n  description \"${X\"\n}\n", ErrSyntax},
		{"stray char", h + "app a { }\n", ErrSyntax},
		{"unmatched close", h + "}\n", ErrSyntax},
		{"unclosed stanza", h + "app a {\n", ErrSyntax},
		{"bad connect arity", h + "component c { provider poisson }\n", ErrSyntax},
		{"connect no arrow", h + "component x {\n}\nconnect x.a x.b\n", ErrSyntax},
		{"connect bad endpoint", h + "component x {\n}\nconnect x -> x.b\n", ErrSyntax},
		{"top-level setting", h + "address tcp://x\n", ErrSyntax},
		{"quoted key", h + "app a {\n  \"description\" x\n}\n", ErrSyntax},

		{"unknown stanza", h + "widget w {\n}\n", ErrUnknownStanza},
		{"dist at top level", h + "dist {\n}\n", ErrUnknownStanza},
		{"config in remote", h + "remote r {\n  config {\n  }\n}\n", ErrUnknownStanza},

		{"unknown app key", h + "app a {\n  colour red\n}\n", ErrUnknownKey},
		{"unknown component key", h + "component c {\n  colour red\n}\n", ErrUnknownKey},
		{"unknown dist key", h + "remote r {\n  dist {\n    stripes 4\n  }\n}\n", ErrUnknownKey},
		{"unknown supervise key", h + "remote r {\n  supervise {\n    lives 9\n  }\n}\n", ErrUnknownKey},

		{"shards not a number", h + "component c {\n  provider poisson\n}\nexport c.A {\n  shards many\n}\n", ErrBadValue},
		{"negative supervise", h + "remote r {\n  supervise {\n    retries -1\n  }\n}\n", ErrBadValue},
		{"bad duration", h + "remote r {\n  supervise {\n    timeout fast\n  }\n}\n", ErrBadValue},
		{"type and provider", h + "component c {\n  type t.T\n  provider poisson\n}\n", ErrBadValue},
		{"version on provider", h + "component c {\n  provider poisson\n  version ^1\n}\n", ErrBadValue},
		{"bad dist map", h + "remote r {\n  address a\n  key k\n  dist {\n    map diagonal\n    length 10\n    ranks 2\n  }\n}\n", ErrBadValue},
		{"block on block map", h + "remote r {\n  address a\n  key k\n  dist {\n    map block\n    length 10\n    ranks 2\n    block 8\n  }\n}\n", ErrBadValue},
		{"dotted instance", h + "component a.b {\n  provider poisson\n}\n", ErrBadValue},
		{"dist remote type", h + "remote r {\n  address a\n  key k\n  type esi.Operator\n  dist {\n    map block\n    length 10\n    ranks 2\n  }\n}\n", ErrBadValue},

		{"duplicate instance", h + "component x {\n  provider poisson\n}\nremote x {\n  address a\n  key k\n}\n", ErrDuplicate},
		{"duplicate repository", h + "repository {\n}\nrepository {\n}\n", ErrDuplicate},
		{"duplicate app", h + "app a {\n}\napp b {\n}\n", ErrDuplicate},
		{"duplicate dist", h + "remote r {\n  dist {\n  }\n  dist {\n  }\n}\n", ErrDuplicate},

		{"app without name", h + "app {\n}\n", ErrMissingKey},
		{"component without type", h + "component c {\n}\n", ErrMissingKey},
		{"remote without address", h + "remote r {\n  key k\n}\n", ErrMissingKey},
		{"remote without key", h + "remote r {\n  address a\n}\n", ErrMissingKey},
		{"dist without map", h + "remote r {\n  address a\n  key k\n  dist {\n    length 10\n    ranks 2\n  }\n}\n", ErrMissingKey},
		{"dist without length", h + "remote r {\n  address a\n  key k\n  dist {\n    map block\n    ranks 2\n  }\n}\n", ErrMissingKey},
		{"cyclic without block", h + "remote r {\n  address a\n  key k\n  dist {\n    map cyclic\n    length 10\n    ranks 2\n  }\n}\n", ErrMissingKey},

		{"connect unknown user", h + "component x {\n  provider poisson\n}\nconnect y.a -> x.b\n", ErrUndefined},
		{"connect unknown provider", h + "component x {\n  provider poisson\n}\nconnect x.a -> y.b\n", ErrUndefined},
		{"export unknown instance", h + "export ghost.A {\n}\n", ErrUndefined},

		{"unknown variable", h + "repository {\n  address \"${NOPE}\"\n}\n", ErrUnknownVar},

		{"bad constraint", h + "component c {\n  type t.T\n  version ^^\n}\n", nil /* repo.ErrBadVersion, checked below */},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			doc, err := Parse(c.src, ParseOptions{Path: "err.ccl"})
			if err == nil {
				err = Validate(doc)
			}
			if err == nil {
				t.Fatalf("no error for:\n%s", c.src)
			}
			if c.want != nil && !errors.Is(err, c.want) {
				t.Fatalf("error %v is not %v", err, c.want)
			}
			if !strings.Contains(err.Error(), "ccl") {
				t.Fatalf("error lacks position/namespace: %v", err)
			}
		})
	}
}

// TestParseVars covers interpolation mechanics.
func TestParseVars(t *testing.T) {
	src := "ccl 1\napp a {\n  description \"run ${WHO} at \\$HOME, ${N}%\"\n}\n"
	doc, err := Parse(src, ParseOptions{Vars: map[string]string{"WHO": "viz", "N": "99"}})
	if err != nil {
		t.Fatal(err)
	}
	if doc.Description != "run viz at $HOME, 99%" {
		t.Fatalf("interpolated description %q", doc.Description)
	}
	// Interpolation happens only inside quoted strings.
	src2 := "ccl 1\ncomponent ${X} {\n  provider poisson\n}\n"
	if _, err := Parse(src2, ParseOptions{}); !errors.Is(err, ErrSyntax) {
		t.Fatalf("bare ${...} should be a syntax error, got %v", err)
	}
}
