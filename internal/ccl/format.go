package ccl

import (
	"fmt"
	"strings"
)

// Format renders a document in canonical form: header, app, repository,
// components, remotes, exports, connects, each in declaration order, keys
// in grammar order, two-space indentation, one blank line between
// stanzas. Parse(Format(d)) reproduces d (modulo comments and variable
// interpolations, which formatting flattens), which is what the parser's
// fuzz target checks.
func Format(d *Document) string {
	var b strings.Builder
	fmt.Fprintf(&b, "ccl %d\n", d.Version)

	if d.Name != "" || d.Description != "" {
		fmt.Fprintf(&b, "\napp %s {\n", d.Name)
		if d.Description != "" {
			fmt.Fprintf(&b, "  description %s\n", quote(d.Description))
		}
		b.WriteString("}\n")
	}
	if d.Repository != nil {
		b.WriteString("\nrepository {\n")
		if d.Repository.Address != "" {
			fmt.Fprintf(&b, "  address %s\n", quote(d.Repository.Address))
		}
		b.WriteString("}\n")
	}
	for _, c := range d.Components {
		fmt.Fprintf(&b, "\ncomponent %s {\n", c.Name)
		if c.Type != "" {
			fmt.Fprintf(&b, "  type %s\n", maybeQuote(c.Type))
		}
		if c.Constraint != "" {
			fmt.Fprintf(&b, "  version %s\n", c.Constraint)
		}
		if c.Provider != "" {
			fmt.Fprintf(&b, "  provider %s\n", maybeQuote(c.Provider))
		}
		if len(c.Config) > 0 {
			b.WriteString("  config {\n")
			for _, kv := range c.Config {
				fmt.Fprintf(&b, "    %s %s\n", kv.Key, maybeQuote(kv.Value))
			}
			b.WriteString("  }\n")
		}
		b.WriteString("}\n")
	}
	for _, r := range d.Remotes {
		fmt.Fprintf(&b, "\nremote %s {\n", r.Name)
		fmt.Fprintf(&b, "  address %s\n", quote(r.Address))
		if r.Key != "" {
			fmt.Fprintf(&b, "  key %s\n", maybeQuote(r.Key))
		}
		if r.Port != "" {
			fmt.Fprintf(&b, "  port %s\n", maybeQuote(r.Port))
		}
		if r.Type != "" {
			fmt.Fprintf(&b, "  type %s\n", maybeQuote(r.Type))
		}
		if dd := r.Dist; dd != nil {
			b.WriteString("  dist {\n")
			fmt.Fprintf(&b, "    map %s\n", dd.Map)
			fmt.Fprintf(&b, "    length %d\n", dd.Length)
			fmt.Fprintf(&b, "    ranks %d\n", dd.Ranks)
			if dd.Block != 0 {
				fmt.Fprintf(&b, "    block %d\n", dd.Block)
			}
			b.WriteString("  }\n")
		}
		if s := r.Supervise; s != nil {
			b.WriteString("  supervise {\n")
			if s.Retries != 0 {
				fmt.Fprintf(&b, "    retries %d\n", s.Retries)
			}
			if s.Breaker != 0 {
				fmt.Fprintf(&b, "    breaker %d\n", s.Breaker)
			}
			if s.Timeout != 0 {
				fmt.Fprintf(&b, "    timeout %s\n", s.Timeout)
			}
			if s.Heartbeat != 0 {
				fmt.Fprintf(&b, "    heartbeat %s\n", s.Heartbeat)
			}
			if s.Restarts != 0 {
				fmt.Fprintf(&b, "    restart %d\n", s.Restarts)
			}
			b.WriteString("  }\n")
		}
		b.WriteString("}\n")
	}
	for _, e := range d.Exports {
		fmt.Fprintf(&b, "\nexport %s.%s {\n", e.Instance, e.Port)
		if e.Address != "" {
			fmt.Fprintf(&b, "  address %s\n", quote(e.Address))
		}
		if e.Shards != 0 {
			fmt.Fprintf(&b, "  shards %d\n", e.Shards)
		}
		b.WriteString("}\n")
	}
	if len(d.Connects) > 0 {
		b.WriteString("\n")
		for _, c := range d.Connects {
			fmt.Fprintf(&b, "connect %s.%s -> %s.%s\n", c.User, c.UsesPort, c.Provider, c.ProvidesPort)
		}
	}
	return b.String()
}

// quote renders a value as a quoted string.
func quote(s string) string {
	r := strings.NewReplacer("\\", "\\\\", "\"", "\\\"", "\n", "\\n", "\t", "\\t", "$", "\\$")
	return "\"" + r.Replace(s) + "\""
}

// maybeQuote renders bare when the value lexes as a single bare word.
func maybeQuote(s string) string {
	if s == "" {
		return quote(s)
	}
	for _, r := range s {
		if !isBare(r) {
			return quote(s)
		}
	}
	if strings.Contains(s, "->") || s == "{" || s == "}" {
		return quote(s)
	}
	return s
}
