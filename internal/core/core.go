// Package core is the top-level assembly API of the CCA reproduction: the
// paper's full Figure 2 wired together — repository, framework, builder,
// SIDL type checking, and configuration events — behind one handle.
//
// It exists so applications (the examples/ programs, cmd/ccafe) compose the
// architecture the way the paper intends: deposit interface definitions and
// component factories into the repository, instantiate through the builder,
// and let the framework connect ports with SIDL subtype checking. Packages
// under internal/ remain independently usable; core only composes them.
package core

import (
	"fmt"

	"repro/internal/cca"
	"repro/internal/cca/framework"
	"repro/internal/esi"
	"repro/internal/mpi"
	"repro/internal/repo"
	"repro/internal/sidl/sreflect"
)

// App is a serial CCA application container.
type App struct {
	Repo    *repo.Repository
	Fw      *framework.Framework
	Builder *repo.Builder
}

// Options configures NewApp.
type Options struct {
	// Flavor advertises framework compliance (default in-process).
	Flavor cca.Flavor
	// Proxy optionally interposes on every connection (§6.2).
	Proxy framework.ProxyFactory
	// WithESI pre-deposits the built-in ESI interface standard and its
	// solver/operator/preconditioner component factories.
	WithESI bool
}

// NewApp builds a repository-backed framework whose port type checking
// follows the repository's SIDL subtype relation.
func NewApp(opts Options) (*App, error) {
	r := repo.New()
	fw := framework.New(framework.Options{
		Flavor:    opts.Flavor,
		Proxy:     opts.Proxy,
		TypeCheck: r.TypeChecker(),
	})
	app := &App{Repo: r, Fw: fw, Builder: repo.NewBuilder(r, fw)}
	if opts.WithESI {
		if err := app.DepositESI(); err != nil {
			return nil, err
		}
	}
	return app, nil
}

// DepositESI deposits the embedded ESI interface standard plus factories
// for the solver, operator (factory-less; operators wrap concrete
// matrices), and preconditioner components.
func (a *App) DepositESI() error {
	esiSrc, portsSrc := esi.Sources()
	deposits := []repo.Entry{
		{
			Name: "esi.Interfaces", Version: "1.0",
			Description: "Equation Solver Interface standard (SIDL definitions)",
			SIDL:        esiSrc,
		},
		{
			Name: "cca.Ports", Version: "0.5",
			Description: "CCA collective and monitor port interfaces",
			SIDL:        portsSrc,
		},
	}
	for _, method := range []string{"cg", "gmres", "bicgstab"} {
		method := method
		deposits = append(deposits, repo.Entry{
			Name:        "esi.SolverComponent." + method,
			Version:     "1.0",
			Description: method + " Krylov solver component",
			Provides:    []repo.PortSpec{{Name: "solver", Type: esi.TypeSolver}},
			Uses: []repo.PortSpec{
				{Name: "A", Type: esi.TypeOperator},
				{Name: "M", Type: esi.TypePreconditioner},
			},
			Factory: func() cca.Component { return esi.NewSolverComponent(method) },
		})
	}
	for _, kind := range []string{"none", "jacobi", "sor", "ilu0"} {
		kind := kind
		deposits = append(deposits, repo.Entry{
			Name:        "esi.PreconditionerComponent." + kind,
			Version:     "1.0",
			Description: kind + " preconditioner component",
			Provides:    []repo.PortSpec{{Name: "M", Type: esi.TypePreconditioner}},
			Uses:        []repo.PortSpec{{Name: "A", Type: esi.TypeMatrixData}},
			Factory:     func() cca.Component { return esi.NewPreconditionerComponent(kind) },
		})
	}
	deposits = append(deposits, repo.Entry{
		Name:        "esi.IterativeSolverComponent.cg",
		Version:     "1.0",
		Description: "step-wise cg solver component (checkpointable, hot-swappable)",
		Provides:    []repo.PortSpec{{Name: "solver", Type: esi.TypeIterativeSolver}},
		Uses:        []repo.PortSpec{{Name: "A", Type: esi.TypeOperator}},
		Factory:     func() cca.Component { return esi.NewIterativeSolverComponent() },
	})
	for _, e := range deposits {
		if err := a.Repo.Deposit(e); err != nil {
			return fmt.Errorf("core: deposit %s: %w", e.Name, err)
		}
	}
	// Register the merged SIDL world for reflection/DMI users.
	sreflect.Global.RegisterTable(a.Repo.Table())
	return nil
}

// Install installs a pre-constructed component (for components with
// constructor arguments a repository factory cannot supply, e.g. an
// OperatorComponent wrapping a particular matrix).
func (a *App) Install(name string, comp cca.Component) error {
	return a.Fw.Install(name, comp)
}

// Create instantiates a repository component type under an instance name.
func (a *App) Create(instance, typeName string) error {
	return a.Builder.Create(instance, typeName)
}

// Connect wires user.usesPort to provider.providesPort.
func (a *App) Connect(user, usesPort, provider, providesPort string) (cca.ConnectionID, error) {
	return a.Fw.Connect(user, usesPort, provider, providesPort)
}

// Port fetches a connected uses port on behalf of a component instance —
// builder-side access for driver programs.
func (a *App) Port(instance, usesPort string) (cca.Port, error) {
	svc, ok := a.Fw.Services(instance)
	if !ok {
		return nil, fmt.Errorf("%w: %q", framework.ErrComponentUnknown, instance)
	}
	return svc.GetPort(usesPort)
}

// Component returns an installed component instance.
func (a *App) Component(name string) (cca.Component, bool) {
	return a.Fw.Component(name)
}

// ParallelApp is the SPMD counterpart: one App per cohort rank with
// collective install/connect semantics (§6.3).
type ParallelApp struct {
	Cohort *framework.Cohort
	Comm   *mpi.Comm
}

// NewParallelApp builds this rank's member of a parallel application.
func NewParallelApp(comm *mpi.Comm, opts Options) *ParallelApp {
	return &ParallelApp{
		Cohort: framework.NewCohort(comm, framework.Options{Flavor: opts.Flavor, Proxy: opts.Proxy}),
		Comm:   comm,
	}
}

// Install installs one component member per rank.
func (p *ParallelApp) Install(name string, factory func(rank int) cca.Component) error {
	return p.Cohort.InstallParallel(name, factory)
}

// Connect wires ports on every rank.
func (p *ParallelApp) Connect(user, usesPort, provider, providesPort string) (cca.ConnectionID, error) {
	return p.Cohort.ConnectParallel(user, usesPort, provider, providesPort)
}

// Component returns this rank's member of an instance.
func (p *ParallelApp) Component(name string) (cca.Component, bool) {
	return p.Cohort.F.Component(name)
}
