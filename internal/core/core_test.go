package core

import (
	"errors"
	"math"
	"testing"

	"repro/internal/cca"
	"repro/internal/esi"
	"repro/internal/linalg"
	"repro/internal/mpi"
)

func TestNewAppWithESI(t *testing.T) {
	app, err := NewApp(Options{WithESI: true})
	if err != nil {
		t.Fatal(err)
	}
	names := app.Repo.List()
	if len(names) < 7 {
		t.Fatalf("repository has %d entries: %v", len(names), names)
	}
	if app.Repo.Table().Lookup("esi.Solver") != "interface" {
		t.Error("esi SIDL not merged")
	}
}

func TestEndToEndSolveViaBuilder(t *testing.T) {
	app, err := NewApp(Options{WithESI: true})
	if err != nil {
		t.Fatal(err)
	}
	m := linalg.Poisson2D(12, 12)
	if err := app.Install("op", esi.NewOperatorComponent(m)); err != nil {
		t.Fatal(err)
	}
	if err := app.Create("solver", "esi.SolverComponent.cg"); err != nil {
		t.Fatal(err)
	}
	if err := app.Create("prec", "esi.PreconditionerComponent.jacobi"); err != nil {
		t.Fatal(err)
	}
	// Subtype-checked connections: solver.A wants esi.Operator; the
	// operator provides esi.MatrixData (a subtype).
	for _, c := range [][4]string{
		{"solver", "A", "op", "A"},
		{"prec", "A", "op", "A"},
		{"solver", "M", "prec", "M"},
	} {
		if _, err := app.Connect(c[0], c[1], c[2], c[3]); err != nil {
			t.Fatalf("connect %v: %v", c, err)
		}
	}
	comp, ok := app.Component("solver")
	if !ok {
		t.Fatal("solver missing")
	}
	solver := comp.(esi.EsiSolver)
	solver.SetTolerance(1e-10)
	b := make([]float64, m.NRows)
	if err := m.Apply(linalg.Ones(m.NCols), b); err != nil {
		t.Fatal(err)
	}
	x := make([]float64, m.NRows)
	iters, err := solver.Solve(b, &x)
	if err != nil {
		t.Fatalf("solve: %v", err)
	}
	if iters == 0 {
		t.Error("no iterations")
	}
	for i, v := range x {
		if math.Abs(v-1) > 1e-6 {
			t.Fatalf("x[%d] = %v", i, v)
		}
	}
}

func TestTypeMismatchRejectedThroughApp(t *testing.T) {
	app, err := NewApp(Options{WithESI: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := app.Create("s1", "esi.SolverComponent.cg"); err != nil {
		t.Fatal(err)
	}
	if err := app.Create("s2", "esi.SolverComponent.gmres"); err != nil {
		t.Fatal(err)
	}
	// solver.A uses esi.Operator; another solver provides esi.Solver,
	// which does NOT extend Operator in this SIDL corpus.
	if _, err := app.Connect("s1", "A", "s2", "solver"); !errors.Is(err, cca.ErrTypeMismatch) {
		t.Errorf("err = %v", err)
	}
}

func TestPortAccess(t *testing.T) {
	app, err := NewApp(Options{WithESI: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := app.Install("op", esi.NewOperatorComponent(linalg.Laplace1D(4))); err != nil {
		t.Fatal(err)
	}
	if err := app.Create("solver", "esi.SolverComponent.cg"); err != nil {
		t.Fatal(err)
	}
	if _, err := app.Connect("solver", "A", "op", "A"); err != nil {
		t.Fatal(err)
	}
	p, err := app.Port("solver", "A")
	if err != nil {
		t.Fatal(err)
	}
	if p.(esi.EsiOperator).Rows() != 4 {
		t.Error("wrong port")
	}
	if _, err := app.Port("ghost", "A"); err == nil {
		t.Error("phantom instance")
	}
}

func TestParallelApp(t *testing.T) {
	mpi.Run(3, func(comm *mpi.Comm) {
		app := NewParallelApp(comm, Options{})
		if err := app.Install("c", func(rank int) cca.Component {
			return &trivial{rank: rank}
		}); err != nil {
			t.Errorf("install: %v", err)
			return
		}
		comp, ok := app.Component("c")
		if !ok || comp.(*trivial).rank != comm.Rank() {
			t.Errorf("rank member wrong: %v %v", comp, ok)
		}
	})
}

type trivial struct{ rank int }

func (tr *trivial) SetServices(svc cca.Services) error { return nil }
