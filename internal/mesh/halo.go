package mesh

import (
	"fmt"
	"sort"

	"repro/internal/linalg"
	"repro/internal/mpi"
)

// This file implements the gather/scatter layer the paper's §2.1 describes:
// "encapsulation of nonlocal communication in gather/scatter routines using
// the Message Passing Interface". A Decomposition gives each rank its owned
// nodes plus a ghost layer; an exchange refreshes ghost values from their
// owners before each local stencil application.

// haloTag is the user-level tag reserved for halo traffic.
const haloTag = 7001

// Decomposition is one rank's view of a node-partitioned mesh: owned nodes
// first, then ghost nodes, in a compact local index space.
type Decomposition struct {
	M    *Mesh
	Part []int // global node -> owning rank
	Rank int
	P    int

	// Owned lists this rank's global node ids, sorted ascending.
	Owned []int
	// Ghosts lists the global ids of off-rank nodes adjacent to owned
	// nodes, sorted ascending. Ghost k occupies local index len(Owned)+k.
	Ghosts []int
	// g2l maps global node id -> local index for owned and ghost nodes.
	g2l map[int]int

	// sendIdx[q] lists local indices of owned nodes that rank q ghosts.
	sendIdx map[int][]int
	// recvIdx[q] lists local (ghost) indices filled by rank q, in the same
	// order q produces them.
	recvIdx map[int][]int
	// neighbors is the sorted set of ranks this rank exchanges with.
	neighbors []int
}

// Decompose builds rank's view of the partition part (as produced by a
// Partitioner with p parts) of mesh m.
func Decompose(m *Mesh, part []int, p, rank int) (*Decomposition, error) {
	if len(part) != m.NumNodes() {
		return nil, fmt.Errorf("%w: partition of %d nodes for mesh with %d", ErrMesh, len(part), m.NumNodes())
	}
	if rank < 0 || rank >= p {
		return nil, fmt.Errorf("%w: rank %d of %d", ErrMesh, rank, p)
	}
	d := &Decomposition{M: m, Part: part, Rank: rank, P: p, g2l: map[int]int{},
		sendIdx: map[int][]int{}, recvIdx: map[int][]int{}}

	for i, r := range part {
		if r < 0 || r >= p {
			return nil, fmt.Errorf("%w: node %d assigned to rank %d of %d", ErrMesh, i, r, p)
		}
		if r == rank {
			d.Owned = append(d.Owned, i)
		}
	}
	for li, g := range d.Owned {
		d.g2l[g] = li
	}
	// Ghosts: off-rank neighbours of owned nodes.
	ghostSet := map[int]bool{}
	for _, g := range d.Owned {
		for _, nb := range m.NodeNeighbors(g) {
			if part[nb] != rank {
				ghostSet[nb] = true
			}
		}
	}
	for g := range ghostSet {
		d.Ghosts = append(d.Ghosts, g)
	}
	sort.Ints(d.Ghosts)
	for k, g := range d.Ghosts {
		d.g2l[g] = len(d.Owned) + k
	}
	// Receive lists: ghosts grouped by owner, ascending global id (both
	// sides sort by global id, so orders agree without negotiation).
	for k, g := range d.Ghosts {
		q := part[g]
		d.recvIdx[q] = append(d.recvIdx[q], len(d.Owned)+k)
	}
	// Send lists: owned nodes that appear in some other rank's ghost set,
	// i.e. owned nodes adjacent to a node owned by q.
	sendSet := map[int]map[int]bool{} // q -> set of owned global ids
	for _, g := range d.Owned {
		for _, nb := range m.NodeNeighbors(g) {
			q := part[nb]
			if q == rank {
				continue
			}
			if sendSet[q] == nil {
				sendSet[q] = map[int]bool{}
			}
			sendSet[q][g] = true
		}
	}
	for q, set := range sendSet {
		ids := make([]int, 0, len(set))
		for g := range set {
			ids = append(ids, g)
		}
		sort.Ints(ids)
		for _, g := range ids {
			d.sendIdx[q] = append(d.sendIdx[q], d.g2l[g])
		}
	}
	nbSet := map[int]bool{}
	for q := range d.sendIdx {
		nbSet[q] = true
	}
	for q := range d.recvIdx {
		nbSet[q] = true
	}
	for q := range nbSet {
		d.neighbors = append(d.neighbors, q)
	}
	sort.Ints(d.neighbors)
	return d, nil
}

// NumOwned returns the count of locally owned nodes.
func (d *Decomposition) NumOwned() int { return len(d.Owned) }

// NumLocal returns owned + ghost count, the length of a local field.
func (d *Decomposition) NumLocal() int { return len(d.Owned) + len(d.Ghosts) }

// Neighbors returns the ranks this rank exchanges halos with.
func (d *Decomposition) Neighbors() []int { return d.neighbors }

// LocalIndex maps a global node id to its local index, or -1 if the node is
// neither owned nor ghosted here.
func (d *Decomposition) LocalIndex(global int) int {
	if li, ok := d.g2l[global]; ok {
		return li
	}
	return -1
}

// Exchange refreshes the ghost entries of field (length NumLocal) from
// their owning ranks over comm. This is the paper's gather (pack owned
// values for each neighbour) / scatter (unpack into ghost slots) step.
func (d *Decomposition) Exchange(comm *mpi.Comm, field []float64) error {
	if len(field) != d.NumLocal() {
		return fmt.Errorf("%w: field length %d, want %d", ErrMesh, len(field), d.NumLocal())
	}
	// Gather + send to every neighbour first (nonblocking semantics:
	// mailbox delivery never blocks), then receive.
	for _, q := range d.neighbors {
		idx := d.sendIdx[q]
		if len(idx) == 0 {
			continue
		}
		buf := make([]float64, len(idx))
		for i, li := range idx {
			buf[i] = field[li]
		}
		if err := comm.Send(q, haloTag, buf); err != nil {
			return err
		}
	}
	for _, q := range d.neighbors {
		idx := d.recvIdx[q]
		if len(idx) == 0 {
			continue
		}
		buf, _, err := comm.RecvFloat64(q, haloTag)
		if err != nil {
			return err
		}
		if len(buf) != len(idx) {
			return fmt.Errorf("%w: halo from %d has %d values, want %d", ErrMesh, q, len(buf), len(idx))
		}
		for i, li := range idx {
			field[li] = buf[i]
		}
	}
	return nil
}

// LocalMatrix restricts global assembly entries to this rank: rows owned
// here (renumbered 0..NumOwned), columns over the local owned+ghost space.
// Entries whose row is off-rank are skipped; an entry whose column is
// neither owned nor ghosted is an error (the operator's stencil must be
// contained in one halo layer).
func (d *Decomposition) LocalMatrix(entries []Entry) (*linalg.CSR, error) {
	var local []linalg.Triplet
	for _, e := range entries {
		if d.Part[e.Row] != d.Rank {
			continue
		}
		col := d.LocalIndex(e.Col)
		if col < 0 {
			return nil, fmt.Errorf("%w: entry (%d,%d) reaches beyond the halo", ErrMesh, e.Row, e.Col)
		}
		local = append(local, linalg.Triplet{Row: d.g2l[e.Row], Col: col, Val: e.Val})
	}
	return linalg.NewCSR(d.NumOwned(), d.NumLocal(), local)
}

// DistOperator is a distributed linear operator: apply = halo exchange +
// local sparse matvec. It implements linalg.Operator over owned-length
// vectors, so the serial Krylov solvers run unchanged inside an SPMD
// component — the design §6.3's collective ports assume.
type DistOperator struct {
	D     *Decomposition
	Comm  *mpi.Comm
	Local *linalg.CSR // NumOwned × NumLocal

	work []float64 // owned+ghost scratch
}

// NewDistOperator builds a distributed operator from global assembly
// entries.
func NewDistOperator(d *Decomposition, comm *mpi.Comm, entries []Entry) (*DistOperator, error) {
	loc, err := d.LocalMatrix(entries)
	if err != nil {
		return nil, err
	}
	return &DistOperator{D: d, Comm: comm, Local: loc, work: make([]float64, d.NumLocal())}, nil
}

// Rows implements linalg.Operator.
func (op *DistOperator) Rows() int { return op.D.NumOwned() }

// Apply implements linalg.Operator: y = A x with ghost refresh.
func (op *DistOperator) Apply(x, y []float64) error {
	if len(x) != op.D.NumOwned() || len(y) != op.D.NumOwned() {
		return fmt.Errorf("%w: apply x=%d y=%d owned=%d", ErrMesh, len(x), len(y), op.D.NumOwned())
	}
	copy(op.work[:op.D.NumOwned()], x)
	if err := op.D.Exchange(op.Comm, op.work); err != nil {
		return err
	}
	return op.Local.Apply(op.work, y)
}

// GlobalDot returns a linalg.Dot that sums local products and reduces over
// comm — the parallel inner product for the Krylov solvers.
func GlobalDot(comm *mpi.Comm) linalg.Dot {
	return func(a, b []float64) float64 {
		local := linalg.DotPar(a, b)
		global, err := comm.AllreduceScalar(local, mpi.Sum)
		if err != nil {
			panic("mesh: global dot allreduce: " + err.Error())
		}
		return global
	}
}
