// Package mesh provides the unstructured-mesh substrate behind the CCA
// paper's motivating application (§2.1): CHAD-style "hybrid unstructured
// meshes" whose nonlocal communication is "encapsulated in gather/scatter
// routines using MPI". It supplies mesh construction, graph partitioning
// (recursive coordinate bisection and greedy growth), and the halo-exchange
// plans that parallel mesh components use to keep ghost values current.
package mesh

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// ErrMesh reports invalid mesh construction input.
var ErrMesh = errors.New("mesh: invalid mesh")

// Mesh is an unstructured 2-D mesh: nodes with coordinates and cells
// (elements) listing their nodes counterclockwise. Mixed element types
// (triangles and quads) are allowed, matching CHAD's "hybrid" meshes.
type Mesh struct {
	// Coords holds node coordinates.
	Coords [][2]float64
	// Cells lists each cell's node indices.
	Cells [][]int

	// nodeAdj[i] lists the nodes sharing an edge with node i (sorted).
	nodeAdj [][]int
	// nodeCells[i] lists the cells touching node i.
	nodeCells [][]int
}

// New validates and indexes a mesh.
func New(coords [][2]float64, cells [][]int) (*Mesh, error) {
	m := &Mesh{Coords: coords, Cells: cells}
	for ci, cell := range cells {
		if len(cell) < 3 {
			return nil, fmt.Errorf("%w: cell %d has %d nodes", ErrMesh, ci, len(cell))
		}
		for _, n := range cell {
			if n < 0 || n >= len(coords) {
				return nil, fmt.Errorf("%w: cell %d references node %d of %d", ErrMesh, ci, n, len(coords))
			}
		}
	}
	m.buildAdjacency()
	return m, nil
}

func (m *Mesh) buildAdjacency() {
	n := len(m.Coords)
	adjSet := make([]map[int]struct{}, n)
	m.nodeCells = make([][]int, n)
	for ci, cell := range m.Cells {
		k := len(cell)
		for i, a := range cell {
			b := cell[(i+1)%k]
			if adjSet[a] == nil {
				adjSet[a] = map[int]struct{}{}
			}
			if adjSet[b] == nil {
				adjSet[b] = map[int]struct{}{}
			}
			adjSet[a][b] = struct{}{}
			adjSet[b][a] = struct{}{}
			m.nodeCells[a] = append(m.nodeCells[a], ci)
		}
	}
	m.nodeAdj = make([][]int, n)
	for i, s := range adjSet {
		for j := range s {
			m.nodeAdj[i] = append(m.nodeAdj[i], j)
		}
		sort.Ints(m.nodeAdj[i])
	}
}

// NumNodes returns the node count.
func (m *Mesh) NumNodes() int { return len(m.Coords) }

// NumCells returns the cell count.
func (m *Mesh) NumCells() int { return len(m.Cells) }

// NodeNeighbors returns the edge-adjacent nodes of node i (sorted, shared).
func (m *Mesh) NodeNeighbors(i int) []int { return m.nodeAdj[i] }

// NodeCells returns the cells incident on node i (shared).
func (m *Mesh) NodeCells(i int) []int { return m.nodeCells[i] }

// CellCentroid returns the centroid of cell ci.
func (m *Mesh) CellCentroid(ci int) [2]float64 {
	var x, y float64
	for _, n := range m.Cells[ci] {
		x += m.Coords[n][0]
		y += m.Coords[n][1]
	}
	k := float64(len(m.Cells[ci]))
	return [2]float64{x / k, y / k}
}

// BoundaryNodes returns the sorted node indices lying on the mesh boundary:
// nodes incident to an edge used by exactly one cell.
func (m *Mesh) BoundaryNodes() []int {
	type edge struct{ a, b int }
	count := map[edge]int{}
	for _, cell := range m.Cells {
		k := len(cell)
		for i := range cell {
			a, b := cell[i], cell[(i+1)%k]
			if a > b {
				a, b = b, a
			}
			count[edge{a, b}]++
		}
	}
	onBoundary := map[int]bool{}
	for e, c := range count {
		if c == 1 {
			onBoundary[e.a] = true
			onBoundary[e.b] = true
		}
	}
	out := make([]int, 0, len(onBoundary))
	for n := range onBoundary {
		out = append(out, n)
	}
	sort.Ints(out)
	return out
}

// StructuredQuad builds an (nx+1)×(ny+1)-node structured quadrilateral mesh
// over the unit square, represented unstructured (the common CHAD test
// configuration). Node (ix, iy) has index iy*(nx+1)+ix.
func StructuredQuad(nx, ny int) *Mesh {
	if nx < 1 || ny < 1 {
		panic(fmt.Sprintf("mesh: StructuredQuad(%d,%d)", nx, ny))
	}
	coords := make([][2]float64, (nx+1)*(ny+1))
	for iy := 0; iy <= ny; iy++ {
		for ix := 0; ix <= nx; ix++ {
			coords[iy*(nx+1)+ix] = [2]float64{float64(ix) / float64(nx), float64(iy) / float64(ny)}
		}
	}
	cells := make([][]int, 0, nx*ny)
	for iy := 0; iy < ny; iy++ {
		for ix := 0; ix < nx; ix++ {
			a := iy*(nx+1) + ix
			cells = append(cells, []int{a, a + 1, a + nx + 2, a + nx + 1})
		}
	}
	m, err := New(coords, cells)
	if err != nil {
		panic("mesh: StructuredQuad: " + err.Error()) // unreachable by construction
	}
	return m
}

// TriangulatedRect builds a triangulated mesh of the unit square with
// 2·nx·ny triangles (each quad split along its diagonal).
func TriangulatedRect(nx, ny int) *Mesh {
	q := StructuredQuad(nx, ny)
	cells := make([][]int, 0, 2*nx*ny)
	for _, c := range q.Cells {
		cells = append(cells, []int{c[0], c[1], c[2]}, []int{c[0], c[2], c[3]})
	}
	m, err := New(q.Coords, cells)
	if err != nil {
		panic("mesh: TriangulatedRect: " + err.Error())
	}
	return m
}

// GraphLaplacianEntries assembles the graph Laplacian of the mesh's node
// connectivity with unit edge weights and a Dirichlet condition on boundary
// nodes (identity rows). This is the model operator the semi-implicit hydro
// component solves each step.
type Entry struct {
	Row, Col int
	Val      float64
}

// GraphLaplacianEntries returns assembly triplets over global node indices.
func (m *Mesh) GraphLaplacianEntries() []Entry {
	boundary := map[int]bool{}
	for _, n := range m.BoundaryNodes() {
		boundary[n] = true
	}
	var out []Entry
	for i := 0; i < m.NumNodes(); i++ {
		if boundary[i] {
			out = append(out, Entry{i, i, 1})
			continue
		}
		// Dirichlet elimination: the diagonal counts every neighbour but
		// couplings to boundary nodes are dropped (their values move to
		// the right-hand side), keeping the operator symmetric positive
		// definite.
		deg := 0
		for _, j := range m.nodeAdj[i] {
			deg++
			if !boundary[j] {
				out = append(out, Entry{i, j, -1})
			}
		}
		out = append(out, Entry{i, i, float64(deg)})
	}
	return out
}

// MinMaxCoords returns the bounding box of the node coordinates.
func (m *Mesh) MinMaxCoords() (min, max [2]float64) {
	min = [2]float64{math.Inf(1), math.Inf(1)}
	max = [2]float64{math.Inf(-1), math.Inf(-1)}
	for _, c := range m.Coords {
		for d := 0; d < 2; d++ {
			if c[d] < min[d] {
				min[d] = c[d]
			}
			if c[d] > max[d] {
				max[d] = c[d]
			}
		}
	}
	return min, max
}
