package mesh

import (
	"fmt"
	"sort"
)

// Partitioner assigns each mesh node to one of p parts. Implementations
// trade cut quality against speed; both are exercised by experiment E5's
// parallel hydro pipeline.
type Partitioner interface {
	// PartitionNodes returns part[i] ∈ [0,p) for every node i.
	PartitionNodes(m *Mesh, p int) []int
	// Name identifies the method.
	Name() string
}

// NewPartitioner returns the named partitioner ("rcb" or "greedy").
func NewPartitioner(name string) (Partitioner, error) {
	switch name {
	case "", "rcb":
		return RCB{}, nil
	case "greedy":
		return Greedy{}, nil
	default:
		return nil, fmt.Errorf("mesh: unknown partitioner %q (want rcb or greedy)", name)
	}
}

// RCB is recursive coordinate bisection: sort along the longest axis of the
// current subdomain's bounding box and split the node set in (weighted)
// half. The classic geometric partitioner of 1990s DOE codes.
type RCB struct{}

// Name implements Partitioner.
func (RCB) Name() string { return "rcb" }

// PartitionNodes implements Partitioner.
func (RCB) PartitionNodes(m *Mesh, p int) []int {
	part := make([]int, m.NumNodes())
	ids := make([]int, m.NumNodes())
	for i := range ids {
		ids[i] = i
	}
	rcbRecurse(m, ids, 0, p, part)
	return part
}

// rcbRecurse assigns parts [base, base+count) to the node set ids.
func rcbRecurse(m *Mesh, ids []int, base, count int, part []int) {
	if count <= 1 || len(ids) == 0 {
		for _, id := range ids {
			part[id] = base
		}
		return
	}
	// Longest axis of this subset's bounding box.
	min := [2]float64{m.Coords[ids[0]][0], m.Coords[ids[0]][1]}
	max := min
	for _, id := range ids {
		for d := 0; d < 2; d++ {
			if m.Coords[id][d] < min[d] {
				min[d] = m.Coords[id][d]
			}
			if m.Coords[id][d] > max[d] {
				max[d] = m.Coords[id][d]
			}
		}
	}
	axis := 0
	if max[1]-min[1] > max[0]-min[0] {
		axis = 1
	}
	sort.Slice(ids, func(i, j int) bool {
		a, b := m.Coords[ids[i]], m.Coords[ids[j]]
		if a[axis] != b[axis] {
			return a[axis] < b[axis]
		}
		return ids[i] < ids[j]
	})
	// Split node count proportionally to the part counts on each side.
	leftParts := count / 2
	cut := len(ids) * leftParts / count
	rcbRecurse(m, ids[:cut], base, leftParts, part)
	rcbRecurse(m, ids[cut:], base+leftParts, count-leftParts, part)
}

// Greedy grows parts by breadth-first search from seed nodes: part k claims
// nodes until it reaches its quota, then the next unclaimed node seeds part
// k+1. Produces connected parts on connected meshes.
type Greedy struct{}

// Name implements Partitioner.
func (Greedy) Name() string { return "greedy" }

// PartitionNodes implements Partitioner.
func (Greedy) PartitionNodes(m *Mesh, p int) []int {
	n := m.NumNodes()
	part := make([]int, n)
	for i := range part {
		part[i] = -1
	}
	assigned := 0
	nextSeed := 0
	for k := 0; k < p; k++ {
		quota := (n - assigned) / (p - k)
		if quota == 0 && assigned < n {
			quota = 1
		}
		// Find an unassigned seed.
		for nextSeed < n && part[nextSeed] != -1 {
			nextSeed++
		}
		if nextSeed >= n {
			break
		}
		queue := []int{nextSeed}
		part[nextSeed] = k
		taken := 1
		for len(queue) > 0 && taken < quota {
			cur := queue[0]
			queue = queue[1:]
			for _, nb := range m.NodeNeighbors(cur) {
				if part[nb] == -1 {
					part[nb] = k
					taken++
					queue = append(queue, nb)
					if taken >= quota {
						break
					}
				}
			}
		}
		// If BFS stalled (disconnected region), sweep for strays.
		for taken < quota {
			found := -1
			for i := nextSeed; i < n; i++ {
				if part[i] == -1 {
					found = i
					break
				}
			}
			if found < 0 {
				break
			}
			part[found] = k
			taken++
			queue = append(queue, found)
			// Keep growing from the new island.
			for len(queue) > 0 && taken < quota {
				cur := queue[0]
				queue = queue[1:]
				for _, nb := range m.NodeNeighbors(cur) {
					if part[nb] == -1 {
						part[nb] = k
						taken++
						queue = append(queue, nb)
						if taken >= quota {
							break
						}
					}
				}
			}
		}
		assigned += taken
	}
	// Any leftovers (rounding) go to the last part.
	for i := range part {
		if part[i] == -1 {
			part[i] = p - 1
		}
	}
	return part
}

// EdgeCut counts mesh edges whose endpoints lie in different parts: the
// partition-quality metric reported by experiment E5's ablation.
func EdgeCut(m *Mesh, part []int) int {
	cut := 0
	for i := 0; i < m.NumNodes(); i++ {
		for _, j := range m.NodeNeighbors(i) {
			if j > i && part[i] != part[j] {
				cut++
			}
		}
	}
	return cut
}

// PartSizes returns the node count of each part.
func PartSizes(part []int, p int) []int {
	sizes := make([]int, p)
	for _, k := range part {
		sizes[k]++
	}
	return sizes
}
