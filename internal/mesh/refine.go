package mesh

import (
	"fmt"
	"sort"
)

// This file implements uniform ("red") mesh refinement with field
// prolongation — the capability behind the paper's §2.2 scenario: "Upon
// observing that the flow fields are not converging as expected, the
// researcher may wish to introduce a new scheme for hierarchical mesh
// refinement." A refinement component can be attached mid-run: the old
// mesh component is swapped for the refined one and the field carried over
// through the prolongation operator.

// Weight is one interpolation contribution: coarse node Node with weight W.
type Weight struct {
	Node int
	W    float64
}

// Prolongation interpolates a coarse node field onto the refined mesh:
// fine node i receives Σ w·coarse[node] over Rows[i].
type Prolongation struct {
	Rows [][]Weight
}

// Apply interpolates a coarse field (length = coarse node count).
func (p *Prolongation) Apply(coarse []float64) []float64 {
	fine := make([]float64, len(p.Rows))
	for i, row := range p.Rows {
		var s float64
		for _, w := range row {
			s += w.W * coarse[w.Node]
		}
		fine[i] = s
	}
	return fine
}

// Refine performs one level of uniform refinement: every triangle becomes
// four triangles, every quad four quads; original nodes keep their indices,
// each unique edge gains a midpoint node, and each quad gains a center
// node. It returns the refined mesh and the prolongation operator.
//
// Cells with more than four nodes are not supported.
func Refine(m *Mesh) (*Mesh, *Prolongation, error) {
	coords := append([][2]float64(nil), m.Coords...)
	prolong := &Prolongation{}
	for i := 0; i < m.NumNodes(); i++ {
		prolong.Rows = append(prolong.Rows, []Weight{{Node: i, W: 1}})
	}

	type edge struct{ a, b int }
	mid := map[edge]int{}
	midpoint := func(a, b int) int {
		e := edge{a, b}
		if a > b {
			e = edge{b, a}
		}
		if id, ok := mid[e]; ok {
			return id
		}
		id := len(coords)
		coords = append(coords, [2]float64{
			(m.Coords[a][0] + m.Coords[b][0]) / 2,
			(m.Coords[a][1] + m.Coords[b][1]) / 2,
		})
		prolong.Rows = append(prolong.Rows, []Weight{{Node: a, W: 0.5}, {Node: b, W: 0.5}})
		mid[e] = id
		return id
	}

	var cells [][]int
	for ci, cell := range m.Cells {
		switch len(cell) {
		case 3:
			a, b, c := cell[0], cell[1], cell[2]
			ab, bc, ca := midpoint(a, b), midpoint(b, c), midpoint(c, a)
			cells = append(cells,
				[]int{a, ab, ca},
				[]int{ab, b, bc},
				[]int{ca, bc, c},
				[]int{ab, bc, ca},
			)
		case 4:
			a, b, c, d := cell[0], cell[1], cell[2], cell[3]
			ab, bc, cd, da := midpoint(a, b), midpoint(b, c), midpoint(c, d), midpoint(d, a)
			center := len(coords)
			coords = append(coords, [2]float64{
				(m.Coords[a][0] + m.Coords[b][0] + m.Coords[c][0] + m.Coords[d][0]) / 4,
				(m.Coords[a][1] + m.Coords[b][1] + m.Coords[c][1] + m.Coords[d][1]) / 4,
			})
			prolong.Rows = append(prolong.Rows, []Weight{
				{Node: a, W: 0.25}, {Node: b, W: 0.25}, {Node: c, W: 0.25}, {Node: d, W: 0.25},
			})
			cells = append(cells,
				[]int{a, ab, center, da},
				[]int{ab, b, bc, center},
				[]int{center, bc, c, cd},
				[]int{da, center, cd, d},
			)
		default:
			return nil, nil, fmt.Errorf("%w: refine cell %d with %d nodes", ErrMesh, ci, len(cell))
		}
	}
	fine, err := New(coords, cells)
	if err != nil {
		return nil, nil, err
	}
	return fine, prolong, nil
}

// RefineLevels applies Refine n times, composing the prolongations.
func RefineLevels(m *Mesh, n int) (*Mesh, *Prolongation, error) {
	cur := m
	var total *Prolongation
	for i := 0; i < n; i++ {
		fine, p, err := Refine(cur)
		if err != nil {
			return nil, nil, err
		}
		if total == nil {
			total = p
		} else {
			total = compose(p, total)
		}
		cur = fine
	}
	if total == nil {
		// Zero levels: identity.
		total = &Prolongation{}
		for i := 0; i < m.NumNodes(); i++ {
			total.Rows = append(total.Rows, []Weight{{Node: i, W: 1}})
		}
	}
	return cur, total, nil
}

// compose chains fine←mid (outer) with mid←coarse (inner).
func compose(outer, inner *Prolongation) *Prolongation {
	out := &Prolongation{Rows: make([][]Weight, len(outer.Rows))}
	for i, row := range outer.Rows {
		acc := map[int]float64{}
		for _, w := range row {
			for _, iw := range inner.Rows[w.Node] {
				acc[iw.Node] += w.W * iw.W
			}
		}
		keys := make([]int, 0, len(acc))
		for k := range acc {
			keys = append(keys, k)
		}
		sort.Ints(keys)
		for _, k := range keys {
			out.Rows[i] = append(out.Rows[i], Weight{Node: k, W: acc[k]})
		}
	}
	return out
}
