package mesh

import (
	"errors"
	"math"
	"testing"

	"repro/internal/linalg"
	"repro/internal/mpi"
)

func TestDecomposeInvariants(t *testing.T) {
	m := StructuredQuad(8, 8)
	const p = 4
	part := RCB{}.PartitionNodes(m, p)
	totalOwned := 0
	for r := 0; r < p; r++ {
		d, err := Decompose(m, part, p, r)
		if err != nil {
			t.Fatal(err)
		}
		totalOwned += d.NumOwned()
		// Every owned node maps back to its local index.
		for li, g := range d.Owned {
			if d.LocalIndex(g) != li {
				t.Fatalf("rank %d: owned %d -> %d, want %d", r, g, d.LocalIndex(g), li)
			}
			if part[g] != r {
				t.Fatalf("rank %d claims node %d owned by %d", r, g, part[g])
			}
		}
		// Ghosts are exactly off-rank neighbours of owned nodes.
		for _, g := range d.Ghosts {
			if part[g] == r {
				t.Fatalf("rank %d ghosts its own node %d", r, g)
			}
			adjacent := false
			for _, nb := range m.NodeNeighbors(g) {
				if part[nb] == r {
					adjacent = true
					break
				}
			}
			if !adjacent {
				t.Fatalf("rank %d ghost %d not adjacent to owned region", r, g)
			}
		}
	}
	if totalOwned != m.NumNodes() {
		t.Fatalf("owned total %d, want %d", totalOwned, m.NumNodes())
	}
}

func TestDecomposeErrors(t *testing.T) {
	m := StructuredQuad(2, 2)
	if _, err := Decompose(m, []int{0}, 1, 0); !errors.Is(err, ErrMesh) {
		t.Errorf("short part err = %v", err)
	}
	part := make([]int, m.NumNodes())
	if _, err := Decompose(m, part, 1, 5); !errors.Is(err, ErrMesh) {
		t.Errorf("bad rank err = %v", err)
	}
	part[0] = 9
	if _, err := Decompose(m, part, 2, 0); !errors.Is(err, ErrMesh) {
		t.Errorf("bad owner err = %v", err)
	}
}

func TestExchangeFillsGhosts(t *testing.T) {
	m := StructuredQuad(10, 10)
	const p = 4
	part := RCB{}.PartitionNodes(m, p)
	mpi.Run(p, func(c *mpi.Comm) {
		d, err := Decompose(m, part, p, c.Rank())
		if err != nil {
			t.Errorf("decompose: %v", err)
			return
		}
		// Field value = global node id; ghosts start poisoned.
		field := make([]float64, d.NumLocal())
		for li, g := range d.Owned {
			field[li] = float64(g)
		}
		for k := range d.Ghosts {
			field[len(d.Owned)+k] = math.NaN()
		}
		if err := d.Exchange(c, field); err != nil {
			t.Errorf("exchange: %v", err)
			return
		}
		for k, g := range d.Ghosts {
			if field[len(d.Owned)+k] != float64(g) {
				t.Errorf("rank %d ghost %d = %v, want %d", c.Rank(), g, field[len(d.Owned)+k], g)
				return
			}
		}
	})
}

func TestDistOperatorMatchesSerial(t *testing.T) {
	m := StructuredQuad(9, 7)
	entries := m.GraphLaplacianEntries()
	n := m.NumNodes()
	// Serial reference.
	tri := make([]linalg.Triplet, len(entries))
	for i, e := range entries {
		tri[i] = linalg.Triplet{Row: e.Row, Col: e.Col, Val: e.Val}
	}
	serial, err := linalg.NewCSR(n, n, tri)
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, n)
	for i := range x {
		x[i] = math.Sin(float64(i))
	}
	want := make([]float64, n)
	if err := serial.Apply(x, want); err != nil {
		t.Fatal(err)
	}

	for _, p := range []int{1, 2, 3, 4} {
		part := RCB{}.PartitionNodes(m, p)
		got := make([]float64, n)
		mpi.Run(p, func(c *mpi.Comm) {
			d, err := Decompose(m, part, p, c.Rank())
			if err != nil {
				t.Errorf("decompose: %v", err)
				return
			}
			op, err := NewDistOperator(d, c, entries)
			if err != nil {
				t.Errorf("dist op: %v", err)
				return
			}
			xl := make([]float64, d.NumOwned())
			for li, g := range d.Owned {
				xl[li] = x[g]
			}
			yl := make([]float64, d.NumOwned())
			if err := op.Apply(xl, yl); err != nil {
				t.Errorf("apply: %v", err)
				return
			}
			for li, g := range d.Owned {
				got[g] = yl[li] // per-node writes are disjoint across ranks
			}
		})
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-12 {
				t.Fatalf("p=%d: y[%d] = %v, want %v", p, i, got[i], want[i])
			}
		}
	}
}

func TestParallelCGMatchesSerial(t *testing.T) {
	m := StructuredQuad(12, 12)
	entries := m.GraphLaplacianEntries()
	n := m.NumNodes()
	tri := make([]linalg.Triplet, len(entries))
	for i, e := range entries {
		tri[i] = linalg.Triplet{Row: e.Row, Col: e.Col, Val: e.Val}
	}
	serial, err := linalg.NewCSR(n, n, tri)
	if err != nil {
		t.Fatal(err)
	}
	b := make([]float64, n)
	if err := serial.Apply(linalg.Ones(n), b); err != nil {
		t.Fatal(err)
	}
	xSerial := make([]float64, n)
	if _, err := (linalg.CG{}).Solve(serial, b, xSerial, linalg.Options{Tol: 1e-10}); err != nil {
		t.Fatal(err)
	}

	const p = 4
	part := Greedy{}.PartitionNodes(m, p)
	xPar := make([]float64, n)
	mpi.Run(p, func(c *mpi.Comm) {
		d, err := Decompose(m, part, p, c.Rank())
		if err != nil {
			t.Errorf("decompose: %v", err)
			return
		}
		op, err := NewDistOperator(d, c, entries)
		if err != nil {
			t.Errorf("dist op: %v", err)
			return
		}
		bl := make([]float64, d.NumOwned())
		for li, g := range d.Owned {
			bl[li] = b[g]
		}
		xl := make([]float64, d.NumOwned())
		res, err := (linalg.CG{}).Solve(op, bl, xl, linalg.Options{Tol: 1e-10, Dot: GlobalDot(c)})
		if err != nil {
			t.Errorf("parallel cg: %v (%v)", err, res)
			return
		}
		for li, g := range d.Owned {
			xPar[g] = xl[li]
		}
	})
	for i := range xSerial {
		if math.Abs(xPar[i]-xSerial[i]) > 1e-6 {
			t.Fatalf("x[%d]: parallel %v vs serial %v", i, xPar[i], xSerial[i])
		}
	}
}

func TestLocalMatrixRejectsBeyondHalo(t *testing.T) {
	m := StructuredQuad(6, 1)
	part := make([]int, m.NumNodes())
	// Nodes 0..6 on a strip: left half rank 0, right half rank 1.
	for i := range part {
		if m.Coords[i][0] > 0.5 {
			part[i] = 1
		}
	}
	d, err := Decompose(m, part, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	// An entry coupling an owned node to a far-away node (not a mesh
	// neighbour) must be rejected.
	far := -1
	for i := range part {
		if part[i] == 1 && d.LocalIndex(i) < 0 {
			far = i
			break
		}
	}
	if far < 0 {
		t.Fatal("test setup: no far node found")
	}
	_, err = d.LocalMatrix([]Entry{{Row: d.Owned[0], Col: far, Val: 1}})
	if !errors.Is(err, ErrMesh) {
		t.Errorf("err = %v, want ErrMesh", err)
	}
}
