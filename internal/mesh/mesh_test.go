package mesh

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestStructuredQuadCounts(t *testing.T) {
	m := StructuredQuad(3, 2)
	if m.NumNodes() != 4*3 || m.NumCells() != 6 {
		t.Fatalf("nodes=%d cells=%d", m.NumNodes(), m.NumCells())
	}
	// Interior node (1,1) = index 5 has 4 edge neighbours.
	if nb := m.NodeNeighbors(5); len(nb) != 4 {
		t.Errorf("interior neighbours = %v", nb)
	}
	// Corner node 0 has 2 edge neighbours.
	if nb := m.NodeNeighbors(0); len(nb) != 2 {
		t.Errorf("corner neighbours = %v", nb)
	}
}

func TestTriangulatedRect(t *testing.T) {
	m := TriangulatedRect(2, 2)
	if m.NumCells() != 8 {
		t.Fatalf("cells = %d", m.NumCells())
	}
	for _, c := range m.Cells {
		if len(c) != 3 {
			t.Fatalf("non-triangle cell %v", c)
		}
	}
}

func TestNewRejectsBadCells(t *testing.T) {
	coords := [][2]float64{{0, 0}, {1, 0}, {0, 1}}
	if _, err := New(coords, [][]int{{0, 1}}); !errors.Is(err, ErrMesh) {
		t.Errorf("short cell err = %v", err)
	}
	if _, err := New(coords, [][]int{{0, 1, 7}}); !errors.Is(err, ErrMesh) {
		t.Errorf("bad node err = %v", err)
	}
}

func TestBoundaryNodes(t *testing.T) {
	m := StructuredQuad(3, 3)
	b := m.BoundaryNodes()
	// 4x4 nodes, interior is 2x2, so 16-4 = 12 boundary nodes.
	if len(b) != 12 {
		t.Fatalf("boundary count = %d, want 12", len(b))
	}
	interior := map[int]bool{5: true, 6: true, 9: true, 10: true}
	for _, n := range b {
		if interior[n] {
			t.Errorf("interior node %d reported as boundary", n)
		}
	}
}

func TestCellCentroid(t *testing.T) {
	m := StructuredQuad(1, 1)
	c := m.CellCentroid(0)
	if c[0] != 0.5 || c[1] != 0.5 {
		t.Errorf("centroid = %v", c)
	}
}

func TestGraphLaplacianSymmetricSPDish(t *testing.T) {
	m := StructuredQuad(5, 5)
	entries := m.GraphLaplacianEntries()
	// Build a dense check of symmetry.
	n := m.NumNodes()
	dense := make([][]float64, n)
	for i := range dense {
		dense[i] = make([]float64, n)
	}
	for _, e := range entries {
		dense[e.Row][e.Col] += e.Val
	}
	for i := 0; i < n; i++ {
		if dense[i][i] <= 0 {
			t.Fatalf("nonpositive diagonal at %d: %v", i, dense[i][i])
		}
		for j := 0; j < n; j++ {
			if dense[i][j] != dense[j][i] {
				t.Fatalf("asymmetry at (%d,%d): %v vs %v", i, j, dense[i][j], dense[j][i])
			}
		}
	}
}

func TestRCBBalance(t *testing.T) {
	m := StructuredQuad(10, 10) // 121 nodes
	for _, p := range []int{2, 3, 4, 7} {
		part := RCB{}.PartitionNodes(m, p)
		sizes := PartSizes(part, p)
		min, max := sizes[0], sizes[0]
		for _, s := range sizes {
			if s < min {
				min = s
			}
			if s > max {
				max = s
			}
		}
		if max-min > 2 {
			t.Errorf("p=%d: imbalanced sizes %v", p, sizes)
		}
	}
}

func TestGreedyCoversAllNodes(t *testing.T) {
	m := TriangulatedRect(8, 8)
	for _, p := range []int{2, 4, 5} {
		part := Greedy{}.PartitionNodes(m, p)
		sizes := PartSizes(part, p)
		total := 0
		for _, s := range sizes {
			total += s
			if s == 0 {
				t.Errorf("p=%d: empty part in %v", p, sizes)
			}
		}
		if total != m.NumNodes() {
			t.Errorf("p=%d: covered %d of %d", p, total, m.NumNodes())
		}
	}
}

func TestEdgeCutReasonable(t *testing.T) {
	m := StructuredQuad(16, 16)
	part := RCB{}.PartitionNodes(m, 4)
	cut := EdgeCut(m, part)
	if cut == 0 {
		t.Fatal("4-way partition has zero cut")
	}
	// A 17x17 grid split into 4 quadrants cuts roughly 2*17 edges (plus
	// diagonal interactions); RCB should stay within a small factor.
	if cut > 150 {
		t.Errorf("edge cut %d is implausibly large", cut)
	}
	single := make([]int, m.NumNodes())
	if EdgeCut(m, single) != 0 {
		t.Error("1-part cut nonzero")
	}
}

func TestNewPartitioner(t *testing.T) {
	for _, name := range []string{"rcb", "greedy"} {
		p, err := NewPartitioner(name)
		if err != nil || p.Name() != name {
			t.Errorf("%s: %v %v", name, p, err)
		}
	}
	if _, err := NewPartitioner("metis"); err == nil {
		t.Error("unknown partitioner accepted")
	}
}

// Property: both partitioners always produce a valid part id for every node
// and perfect coverage.
func TestPartitionValidityProperty(t *testing.T) {
	f := func(nxRaw, nyRaw, pRaw uint8) bool {
		nx := int(nxRaw)%6 + 1
		ny := int(nyRaw)%6 + 1
		p := int(pRaw)%5 + 1
		m := StructuredQuad(nx, ny)
		for _, pt := range []Partitioner{RCB{}, Greedy{}} {
			part := pt.PartitionNodes(m, p)
			if len(part) != m.NumNodes() {
				return false
			}
			for _, k := range part {
				if k < 0 || k >= p {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
