package mesh

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestRefineQuadCounts(t *testing.T) {
	m := StructuredQuad(2, 2) // 9 nodes, 4 quads
	fine, p, err := Refine(m)
	if err != nil {
		t.Fatal(err)
	}
	// Refined: original 9 + 12 edge midpoints + 4 centers = 25 nodes;
	// 16 quads — identical to StructuredQuad(4, 4).
	if fine.NumNodes() != 25 || fine.NumCells() != 16 {
		t.Fatalf("nodes=%d cells=%d", fine.NumNodes(), fine.NumCells())
	}
	if len(p.Rows) != 25 {
		t.Fatalf("prolongation rows = %d", len(p.Rows))
	}
}

func TestRefineTriangleCounts(t *testing.T) {
	m := TriangulatedRect(1, 1) // 4 nodes, 2 triangles
	fine, _, err := Refine(m)
	if err != nil {
		t.Fatal(err)
	}
	// 4 original + 5 unique edges = 9 nodes; 8 triangles.
	if fine.NumNodes() != 9 || fine.NumCells() != 8 {
		t.Fatalf("nodes=%d cells=%d", fine.NumNodes(), fine.NumCells())
	}
}

func TestRefineRejectsBigCells(t *testing.T) {
	m, err := New([][2]float64{{0, 0}, {1, 0}, {1, 1}, {0.5, 1.5}, {0, 1}},
		[][]int{{0, 1, 2, 3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := Refine(m); !errors.Is(err, ErrMesh) {
		t.Errorf("err = %v", err)
	}
}

// Prolongation of a linear function must be exact (midpoints and centroids
// reproduce linear fields).
func TestProlongationExactForLinearFields(t *testing.T) {
	m := StructuredQuad(3, 3)
	fine, p, err := Refine(m)
	if err != nil {
		t.Fatal(err)
	}
	lin := func(x, y float64) float64 { return 3*x - 2*y + 0.5 }
	coarse := make([]float64, m.NumNodes())
	for i, c := range m.Coords {
		coarse[i] = lin(c[0], c[1])
	}
	fineVals := p.Apply(coarse)
	for i, c := range fine.Coords {
		if math.Abs(fineVals[i]-lin(c[0], c[1])) > 1e-12 {
			t.Fatalf("fine node %d at %v: %v != %v", i, c, fineVals[i], lin(c[0], c[1]))
		}
	}
}

func TestRefineLevelsCompose(t *testing.T) {
	m := StructuredQuad(2, 2)
	fine, p, err := RefineLevels(m, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Two levels of a 2x2 quad grid = an 8x8 grid: 81 nodes, 64 cells.
	if fine.NumNodes() != 81 || fine.NumCells() != 64 {
		t.Fatalf("nodes=%d cells=%d", fine.NumNodes(), fine.NumCells())
	}
	// Composition must still be exact for linears.
	lin := func(x, y float64) float64 { return x + 2*y }
	coarse := make([]float64, m.NumNodes())
	for i, c := range m.Coords {
		coarse[i] = lin(c[0], c[1])
	}
	fineVals := p.Apply(coarse)
	for i, c := range fine.Coords {
		if math.Abs(fineVals[i]-lin(c[0], c[1])) > 1e-12 {
			t.Fatalf("node %d: %v != %v", i, fineVals[i], lin(c[0], c[1]))
		}
	}
	// Zero levels = identity.
	same, p0, err := RefineLevels(m, 0)
	if err != nil || same != m {
		t.Fatalf("zero levels: %v %v", same, err)
	}
	id := p0.Apply(coarse)
	for i := range coarse {
		if id[i] != coarse[i] {
			t.Fatal("identity prolongation differs")
		}
	}
}

// Property: prolongation rows are convex combinations (weights sum to 1,
// all non-negative) for any structured mesh — value bounds are preserved.
func TestProlongationConvexProperty(t *testing.T) {
	f := func(nxRaw, nyRaw uint8) bool {
		nx := int(nxRaw)%4 + 1
		ny := int(nyRaw)%4 + 1
		_, p, err := Refine(StructuredQuad(nx, ny))
		if err != nil {
			return false
		}
		for _, row := range p.Rows {
			sum := 0.0
			for _, w := range row {
				if w.W < 0 {
					return false
				}
				sum += w.W
			}
			if math.Abs(sum-1) > 1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestRefinementMidRunScenario reproduces §2.2: after observing poor
// resolution, the researcher swaps the mesh for a refined one; the field is
// carried over by prolongation and the simulation continues on the fine
// mesh. (Exercised serially; the parallel path uses the same components.)
func TestRefinementMidRunScenario(t *testing.T) {
	coarse := StructuredQuad(4, 4)
	fine, p, err := Refine(coarse)
	if err != nil {
		t.Fatal(err)
	}
	// A coarse "field" mid-simulation.
	field := make([]float64, coarse.NumNodes())
	for i, c := range coarse.Coords {
		dx, dy := c[0]-0.5, c[1]-0.5
		field[i] = math.Exp(-10 * (dx*dx + dy*dy))
	}
	fineField := p.Apply(field)
	if len(fineField) != fine.NumNodes() {
		t.Fatalf("fine field length %d", len(fineField))
	}
	// Interpolated peak preserved within interpolation error.
	maxCoarse, maxFine := 0.0, 0.0
	for _, v := range field {
		maxCoarse = math.Max(maxCoarse, v)
	}
	for _, v := range fineField {
		maxFine = math.Max(maxFine, v)
	}
	if math.Abs(maxCoarse-maxFine) > 0.05 {
		t.Errorf("peak changed: %v -> %v", maxCoarse, maxFine)
	}
	// The fine mesh partitions and decomposes like any other.
	part := RCB{}.PartitionNodes(fine, 3)
	if _, err := Decompose(fine, part, 3, 1); err != nil {
		t.Fatal(err)
	}
}
