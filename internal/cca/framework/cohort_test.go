package framework

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/cca"
	"repro/internal/mpi"
)

// rankedAdder is an SPMD component member: each rank provides its rank as
// the bias so tests can see per-member behaviour.
type rankedAdder struct {
	rank int
	svc  cca.Services
}

func (a *rankedAdder) SetServices(svc cca.Services) error {
	a.svc = svc
	return svc.AddProvidesPort(a, cca.PortInfo{Name: "add", Type: "test.AddPort"})
}

func (a *rankedAdder) Add(x, y float64) float64 { return x + y + float64(a.rank) }

type rankedCaller struct {
	svc cca.Services
}

func (c *rankedCaller) SetServices(svc cca.Services) error {
	c.svc = svc
	return svc.RegisterUsesPort(cca.PortInfo{Name: "sum", Type: "test.AddPort"})
}

func TestCohortInstallConnectCall(t *testing.T) {
	const p = 4
	mpi.Run(p, func(comm *mpi.Comm) {
		c := NewCohort(comm, Options{})
		if !c.F.Flavor().Contains(cca.FlavorCollective) {
			t.Error("cohort framework lacks collective flavor")
		}
		if err := c.InstallParallel("adder", func(rank int) cca.Component {
			return &rankedAdder{rank: rank}
		}); err != nil {
			t.Errorf("install: %v", err)
			return
		}
		caller := &rankedCaller{}
		if err := c.InstallParallel("caller", func(rank int) cca.Component { return caller }); err != nil {
			t.Errorf("install caller: %v", err)
			return
		}
		if err := c.VerifyPorts("adder"); err != nil {
			t.Errorf("verify ports: %v", err)
			return
		}
		if _, err := c.ConnectParallel("caller", "sum", "adder", "add"); err != nil {
			t.Errorf("connect: %v", err)
			return
		}
		// Each rank calls through its local member: rank-specific bias.
		port, err := caller.svc.GetPort("sum")
		if err != nil {
			t.Errorf("get port: %v", err)
			return
		}
		got := port.(interface{ Add(a, b float64) float64 }).Add(1, 2)
		if got != 3+float64(comm.Rank()) {
			t.Errorf("rank %d: Add = %v", comm.Rank(), got)
		}
		if err := c.RemoveParallel("adder"); err != nil {
			t.Errorf("remove: %v", err)
		}
	})
}

func TestCohortDetectsNameDivergence(t *testing.T) {
	mpi.Run(2, func(comm *mpi.Comm) {
		c := NewCohort(comm, Options{})
		name := "same"
		if comm.Rank() == 1 {
			name = "different"
		}
		err := c.InstallParallel(name, func(rank int) cca.Component { return &rankedAdder{} })
		if !errors.Is(err, ErrInconsistent) {
			t.Errorf("rank %d: err = %v, want ErrInconsistent", comm.Rank(), err)
		}
	})
}

func TestCohortDetectsPartialFailure(t *testing.T) {
	mpi.Run(3, func(comm *mpi.Comm) {
		c := NewCohort(comm, Options{})
		// Rank 2 pre-installs a colliding instance so its InstallParallel
		// member fails while the operation digest still matches.
		if comm.Rank() == 2 {
			if err := c.F.Install("x", &rankedAdder{}); err != nil {
				t.Errorf("setup: %v", err)
				return
			}
		}
		err := c.InstallParallel("x", func(rank int) cca.Component { return &rankedAdder{} })
		if comm.Rank() == 2 {
			if !errors.Is(err, ErrComponentExists) {
				t.Errorf("rank 2 err = %v", err)
			}
		} else if !errors.Is(err, ErrInconsistent) {
			t.Errorf("rank %d err = %v, want ErrInconsistent", comm.Rank(), err)
		}
	})
}

func TestCohortDetectsPortDivergence(t *testing.T) {
	mpi.Run(2, func(comm *mpi.Comm) {
		c := NewCohort(comm, Options{})
		err := c.InstallParallel("odd", func(rank int) cca.Component {
			return &divergentPorts{extra: rank == 1}
		})
		if err != nil {
			t.Errorf("install: %v", err)
			return
		}
		if err := c.VerifyPorts("odd"); !errors.Is(err, ErrInconsistent) {
			t.Errorf("rank %d: err = %v, want ErrInconsistent", comm.Rank(), err)
		}
	})
}

type divergentPorts struct {
	extra bool
}

func (d *divergentPorts) SetServices(svc cca.Services) error {
	if err := svc.AddProvidesPort(d, cca.PortInfo{Name: "a", Type: "t.A"}); err != nil {
		return err
	}
	if d.extra {
		return svc.AddProvidesPort(d, cca.PortInfo{Name: "b", Type: "t.B"})
	}
	return nil
}

func TestCohortDisconnectParallel(t *testing.T) {
	mpi.Run(2, func(comm *mpi.Comm) {
		c := NewCohort(comm, Options{})
		caller := &rankedCaller{}
		if err := c.InstallParallel("adder", func(rank int) cca.Component { return &rankedAdder{rank: rank} }); err != nil {
			t.Errorf("install: %v", err)
			return
		}
		if err := c.InstallParallel("caller", func(rank int) cca.Component { return caller }); err != nil {
			t.Errorf("install: %v", err)
			return
		}
		id, err := c.ConnectParallel("caller", "sum", "adder", "add")
		if err != nil {
			t.Errorf("connect: %v", err)
			return
		}
		if err := c.DisconnectParallel(id); err != nil {
			t.Errorf("disconnect: %v", err)
			return
		}
		if _, err := caller.svc.GetPort("sum"); !errors.Is(err, cca.ErrNotConnected) {
			t.Errorf("port survives disconnect: %v", err)
		}
	})
}

func TestCohortManyOperationsStayConsistent(t *testing.T) {
	mpi.Run(4, func(comm *mpi.Comm) {
		c := NewCohort(comm, Options{})
		for i := 0; i < 10; i++ {
			name := fmt.Sprintf("comp%d", i)
			if err := c.InstallParallel(name, func(rank int) cca.Component { return &rankedAdder{rank: rank} }); err != nil {
				t.Errorf("install %s: %v", name, err)
				return
			}
		}
		if got := len(c.F.ComponentNames()); got != 10 {
			t.Errorf("components = %d", got)
		}
	})
}
