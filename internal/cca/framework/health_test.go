package framework

// Tests for the connection health state machine: SetPortHealth transitions,
// the events they emit through the configuration API, and GetPort's typed
// failure on a Broken connection.

import (
	"errors"
	"sync"
	"testing"

	"repro/internal/cca"
)

// eventLog collects emitted events.
type eventLog struct {
	mu     sync.Mutex
	events []cca.Event
}

func (l *eventLog) OnEvent(e cca.Event) {
	l.mu.Lock()
	l.events = append(l.events, e)
	l.mu.Unlock()
}

func (l *eventLog) ofKind(k cca.EventKind) []cca.Event {
	l.mu.Lock()
	defer l.mu.Unlock()
	var out []cca.Event
	for _, e := range l.events {
		if e.Kind == k {
			out = append(out, e)
		}
	}
	return out
}

func TestPortHealthLifecycle(t *testing.T) {
	f, caller, _ := newConnected(t)
	log := &eventLog{}
	f.AddEventListener(log)

	// Default: healthy, and calls flow.
	if h, err := f.PortHealth("adder", "add"); err != nil || h != cca.HealthHealthy {
		t.Fatalf("initial health = %v, %v", h, err)
	}
	if _, err := caller.Compute(1, 2); err != nil {
		t.Fatal(err)
	}

	// Degraded: event carries the affected connection; GetPort still works
	// (the supervisor is reconnecting — callers may proceed and retry).
	cause := errors.New("remote peer lost")
	if err := f.SetPortHealth("adder", "add", cca.HealthDegraded, cause); err != nil {
		t.Fatal(err)
	}
	ev := log.ofKind(cca.EventConnectionDegraded)
	if len(ev) != 1 {
		t.Fatalf("degraded events = %d, want 1", len(ev))
	}
	if ev[0].Connection.Provider != "adder" || !errors.Is(ev[0].Err, cause) {
		t.Errorf("degraded event = %+v", ev[0])
	}
	if _, err := caller.Compute(1, 2); err != nil {
		t.Errorf("degraded connection refused a call: %v", err)
	}

	// Broken: GetPort sheds with the typed error instead of hanging.
	if err := f.SetPortHealth("adder", "add", cca.HealthBroken, cause); err != nil {
		t.Fatal(err)
	}
	if len(log.ofKind(cca.EventConnectionBroken)) != 1 {
		t.Error("no broken event")
	}
	if _, err := caller.svc.GetPort("sum"); !errors.Is(err, cca.ErrConnectionBroken) {
		t.Errorf("GetPort on broken = %v, want ErrConnectionBroken", err)
	}
	if h, _ := f.PortHealth("adder", "add"); h != cca.HealthBroken {
		t.Errorf("health = %v, want broken", h)
	}

	// Restored: event emitted, calls flow again.
	if err := f.SetPortHealth("adder", "add", cca.HealthHealthy, nil); err != nil {
		t.Fatal(err)
	}
	if len(log.ofKind(cca.EventConnectionRestored)) != 1 {
		t.Error("no restored event")
	}
	if _, err := caller.Compute(3, 4); err != nil {
		t.Errorf("restored connection refused a call: %v", err)
	}
}

func TestPortHealthNoOpAndErrors(t *testing.T) {
	f, _, _ := newConnected(t)
	log := &eventLog{}
	f.AddEventListener(log)

	// Re-setting the current state emits nothing.
	if err := f.SetPortHealth("adder", "add", cca.HealthHealthy, nil); err != nil {
		t.Fatal(err)
	}
	log.mu.Lock()
	n := len(log.events)
	log.mu.Unlock()
	if n != 0 {
		t.Errorf("no-op transition emitted %d events", n)
	}

	if err := f.SetPortHealth("ghost", "add", cca.HealthBroken, nil); err == nil {
		t.Error("unknown component accepted")
	}
	if err := f.SetPortHealth("adder", "ghost", cca.HealthBroken, nil); err == nil {
		t.Error("unknown port accepted")
	}
	if _, err := f.PortHealth("ghost", "add"); err == nil {
		t.Error("unknown component health query accepted")
	}
}

func TestPortHealthWithoutConnections(t *testing.T) {
	// A provides port with no uses connections still tracks health; the
	// event degrades to component granularity.
	f := New(Options{})
	if err := f.Install("adder", &adderComponent{}); err != nil {
		t.Fatal(err)
	}
	log := &eventLog{}
	f.AddEventListener(log)
	if err := f.SetPortHealth("adder", "add", cca.HealthBroken, errors.New("down")); err != nil {
		t.Fatal(err)
	}
	ev := log.ofKind(cca.EventConnectionBroken)
	if len(ev) != 1 || ev[0].Component != "adder" {
		t.Fatalf("component-granularity event = %+v", ev)
	}
}

func TestBrokenHealthOnlyAffectsItsPort(t *testing.T) {
	// Two providers fanned into one uses port: breaking one must not block
	// GetPorts access to the other.
	f := New(Options{})
	a1 := &adderComponent{}
	a2 := &adderComponent{bias: 100}
	caller := &callerComponent{}
	for name, comp := range map[string]cca.Component{"a1": a1, "a2": a2, "caller": caller} {
		if err := f.Install(name, comp); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := f.Connect("caller", "sum", "a1", "add"); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Connect("caller", "sum", "a2", "add"); err != nil {
		t.Fatal(err)
	}
	if err := f.SetPortHealth("a1", "add", cca.HealthBroken, nil); err != nil {
		t.Fatal(err)
	}
	ports, err := caller.svc.GetPorts("sum")
	if err != nil {
		t.Fatal(err)
	}
	if len(ports) != 2 {
		t.Fatalf("GetPorts = %d ports", len(ports))
	}
	// The single-port accessor refuses the ambiguous fan-out as before;
	// health filtering applies to the unambiguous single-connection path.
	if _, err := caller.svc.GetPort("sum"); !errors.Is(err, cca.ErrMultiConnected) {
		t.Errorf("GetPort fan-out err = %v", err)
	}
}

func TestHealthStrings(t *testing.T) {
	cases := map[cca.Health]string{
		cca.HealthHealthy:  "healthy",
		cca.HealthDegraded: "degraded",
		cca.HealthBroken:   "broken",
	}
	for h, want := range cases {
		if h.String() != want {
			t.Errorf("%d.String() = %q, want %q", h, h.String(), want)
		}
	}
	kinds := map[cca.EventKind]string{
		cca.EventConnectionDegraded: "connection-degraded",
		cca.EventConnectionRestored: "connection-restored",
		cca.EventConnectionBroken:   "connection-broken",
	}
	for k, want := range kinds {
		if k.String() != want {
			t.Errorf("kind %d = %q, want %q", k, k.String(), want)
		}
	}
}
