package framework

import (
	"errors"
	"fmt"
	"hash/fnv"
	"strings"

	"repro/internal/cca"
	"repro/internal/mpi"
)

// ErrInconsistent reports a cohort operation whose arguments or outcomes
// diverged across ranks — the condition §6.3 requires CCA implementations
// to prevent: "the CCA standard does require that as one of the CCA
// services the implementation maintain consistency among the classes."
var ErrInconsistent = errors.New("framework: cohort state diverged across ranks")

// Cohort is one rank's view of a parallel framework: a per-rank Framework
// instance (the paper's "in a distributed-memory model a copy of these
// classes could be maintained by every process participating in
// computation") plus the communicator tying the cohort together.
//
// All Parallel methods are collective: every rank of the communicator must
// call them in the same order with the same arguments, and each call ends
// with a consistency verification across ranks.
type Cohort struct {
	F    *Framework
	Comm *mpi.Comm
}

// NewCohort builds this rank's framework instance. The framework
// advertises the collective flavor in addition to opts.Flavor.
func NewCohort(comm *mpi.Comm, opts Options) *Cohort {
	if opts.Flavor == 0 {
		opts.Flavor = cca.FlavorInProcess
	}
	opts.Flavor |= cca.FlavorCollective
	return &Cohort{F: New(opts), Comm: comm}
}

// Rank returns this cohort member's rank.
func (c *Cohort) Rank() int { return c.Comm.Rank() }

// Size returns the cohort size.
func (c *Cohort) Size() int { return c.Comm.Size() }

// verify checks that every rank reached the same operation with the same
// argument digest and agreed on success.
func (c *Cohort) verify(op string, args string, localErr error) error {
	h := fnv.New64a()
	h.Write([]byte(op))
	h.Write([]byte{0})
	h.Write([]byte(args))
	digest := float64(h.Sum64() >> 11) // keep within float64 integer precision
	okFlag := 1.0
	if localErr != nil {
		okFlag = 0
	}
	lo, err := c.Comm.AllreduceScalar(digest, mpi.Min)
	if err != nil {
		return err
	}
	hi, err := c.Comm.AllreduceScalar(digest, mpi.Max)
	if err != nil {
		return err
	}
	allOK, err := c.Comm.AllreduceScalar(okFlag, mpi.Min)
	if err != nil {
		return err
	}
	if lo != hi {
		return fmt.Errorf("%w: %s(%s)", ErrInconsistent, op, args)
	}
	if localErr != nil {
		return localErr
	}
	if allOK == 0 {
		return fmt.Errorf("%w: %s(%s) failed on another rank", ErrInconsistent, op, args)
	}
	return nil
}

// InstallParallel instantiates one component member per rank under the
// shared instance name. The factory receives the rank so members can bind
// rank-specific state (their slice of a distributed array, for example).
func (c *Cohort) InstallParallel(name string, factory func(rank int) cca.Component) error {
	localErr := c.F.Install(name, factory(c.Rank()))
	return c.verify("install", name, localErr)
}

// RemoveParallel removes the named component on every rank.
func (c *Cohort) RemoveParallel(name string) error {
	localErr := c.F.Remove(name)
	return c.verify("remove", name, localErr)
}

// ConnectParallel connects the named ports on every rank, yielding one
// connection per cohort member (the per-process port copies of §6.3).
func (c *Cohort) ConnectParallel(user, usesPort, provider, providesPort string) (cca.ConnectionID, error) {
	id, localErr := c.F.Connect(user, usesPort, provider, providesPort)
	args := strings.Join([]string{user, usesPort, provider, providesPort}, "\x00")
	return id, c.verify("connect", args, localErr)
}

// DisconnectParallel severs the connection on every rank.
func (c *Cohort) DisconnectParallel(id cca.ConnectionID) error {
	localErr := c.F.Disconnect(id)
	return c.verify("disconnect", id.String(), localErr)
}

// VerifyPorts checks that a component's port registrations agree across the
// cohort: every rank must expose identical provides/uses port name+type
// sets. Components whose members register different ports (a programming
// error in SPMD code) are detected here rather than hanging later.
func (c *Cohort) VerifyPorts(component string) error {
	svc, ok := c.F.Services(component)
	var desc string
	var localErr error
	if !ok {
		localErr = fmt.Errorf("%w: %q", ErrComponentUnknown, component)
	} else {
		var parts []string
		for _, n := range svc.ProvidesPortNames() {
			info, _ := svc.PortInfo(n)
			parts = append(parts, "p:"+n+":"+info.Type)
		}
		for _, n := range svc.UsesPortNames() {
			info, _ := svc.PortInfo(n)
			parts = append(parts, "u:"+n+":"+info.Type)
		}
		desc = strings.Join(parts, ",")
	}
	return c.verify("ports:"+component, desc, localErr)
}

// Barrier synchronizes the cohort.
func (c *Cohort) Barrier() error { return c.Comm.Barrier() }
