package framework

import (
	"repro/internal/cca"
	"repro/internal/mpi"
)

// SharedCohort is the shared-memory alternative to Cohort, realizing the
// other half of §6.3's implementation freedom: "in a distributed-memory
// model a copy of these classes could be maintained by every process
// participating in computation, whereas in shared memory a class could be
// represented just once."
//
// One Framework instance is shared by every rank: components are installed
// once (rank 0 performs the mutation; a barrier publishes it), each rank
// fetches ports from the same CCAServices, and port implementations must
// therefore be safe for concurrent calls — the threaded computational model
// the paper's §7 lists among future directions.
type SharedCohort struct {
	// F is the single shared framework instance (identical on all ranks).
	F    *Framework
	Comm *mpi.Comm
}

// NewSharedCohort builds the cohort over one framework. Collective: every
// rank must call it; rank 0's framework is broadcast to the others.
func NewSharedCohort(comm *mpi.Comm, opts Options) (*SharedCohort, error) {
	if opts.Flavor == 0 {
		opts.Flavor = cca.FlavorInProcess
	}
	opts.Flavor |= cca.FlavorCollective
	var fw *Framework
	if comm.Rank() == 0 {
		fw = New(opts)
	}
	p, err := comm.Bcast(0, fw)
	if err != nil {
		return nil, err
	}
	return &SharedCohort{F: p.(*Framework), Comm: comm}, nil
}

// Install installs the single shared component instance (rank 0 acts; all
// ranks synchronize and observe the same error outcome).
func (s *SharedCohort) Install(name string, factory func() cca.Component) error {
	return s.rank0(func() error { return s.F.Install(name, factory()) })
}

// Connect wires ports once for the whole cohort.
func (s *SharedCohort) Connect(user, usesPort, provider, providesPort string) (cca.ConnectionID, error) {
	id := cca.ConnectionID{User: user, UsesPort: usesPort, Provider: provider, ProvidesPort: providesPort}
	err := s.rank0(func() error {
		_, err := s.F.Connect(user, usesPort, provider, providesPort)
		return err
	})
	return id, err
}

// Remove removes the shared instance.
func (s *SharedCohort) Remove(name string) error {
	return s.rank0(func() error { return s.F.Remove(name) })
}

// rank0 runs f on rank 0 and broadcasts the outcome, so every rank agrees
// on success before touching the shared state further.
func (s *SharedCohort) rank0(f func() error) error {
	var errMsg string
	if s.Comm.Rank() == 0 {
		if err := f(); err != nil {
			errMsg = err.Error()
		}
	}
	p, err := s.Comm.Bcast(0, errMsg)
	if err != nil {
		return err
	}
	if msg := p.(string); msg != "" {
		return &sharedError{msg: msg, local: s.Comm.Rank() == 0}
	}
	return nil
}

// sharedError reports a shared-cohort operation failure on every rank.
type sharedError struct {
	msg   string
	local bool
}

func (e *sharedError) Error() string {
	if e.local {
		return e.msg
	}
	return "framework: shared cohort operation failed on rank 0: " + e.msg
}

// Port fetches a connected uses port on behalf of component instance — the
// per-rank access path into the single shared services object. Safe to call
// concurrently from all ranks.
func (s *SharedCohort) Port(instance, usesPort string) (cca.Port, error) {
	svc, ok := s.F.Services(instance)
	if !ok {
		return nil, ErrComponentUnknown
	}
	return svc.GetPort(usesPort)
}
