package framework

// Quiesce and Swap: the live-replacement path. The standing-load test is
// the package-level statement of the PR's acceptance criterion — a caller
// hammering a port through a swap window sees only the typed retryable
// cca.ErrPortQuiescing, never a torn topology or a wrong answer.

import (
	"errors"
	"io"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/cca"
	"repro/internal/ckpt"
)

// statefulAdder is a checkpointable provider: bias is the state a swap
// must carry.
type statefulAdder struct {
	svc      cca.Services
	bias     float64
	released atomic.Bool
}

func (a *statefulAdder) SetServices(svc cca.Services) error {
	a.svc = svc
	return svc.AddProvidesPort(a, cca.PortInfo{Name: "add", Type: "test.AddPort"})
}

func (a *statefulAdder) ReleaseServices() error {
	a.released.Store(true)
	return nil
}

func (a *statefulAdder) Add(x, y float64) float64 { return x + y + a.bias }

func (a *statefulAdder) Checkpoint(wr io.Writer) error {
	w := ckpt.NewWriter(wr)
	w.Float64("bias", a.bias)
	return w.Close()
}

func (a *statefulAdder) Restore(rd io.Reader) error {
	r, err := ckpt.NewReader(rd)
	if err != nil {
		return err
	}
	a.bias, err = r.Float64("bias")
	return err
}

var _ cca.Checkpointable = (*statefulAdder)(nil)

func newStatefulConnected(t *testing.T, bias float64) (*Framework, *callerComponent, *statefulAdder) {
	t.Helper()
	f := New(Options{})
	adder := &statefulAdder{bias: bias}
	caller := &callerComponent{}
	if err := f.Install("adder", adder); err != nil {
		t.Fatal(err)
	}
	if err := f.Install("caller", caller); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Connect("caller", "sum", "adder", "add"); err != nil {
		t.Fatal(err)
	}
	return f, caller, adder
}

func TestQuiesceShedsAndDrains(t *testing.T) {
	f, caller, _ := newStatefulConnected(t, 0)
	var events []cca.EventKind
	var emu sync.Mutex
	f.AddEventListener(cca.EventListenerFunc(func(e cca.Event) {
		emu.Lock()
		events = append(events, e.Kind)
		emu.Unlock()
	}))

	// Hold an acquisition so the drain has something to wait for.
	if _, err := caller.svc.GetPort("sum"); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- f.Quiesce("adder", "add", 5*time.Second) }()

	// The gate closes promptly even while the drain is blocked: new
	// acquisitions shed with the typed retryable error.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if _, err := caller.svc.GetPort("sum"); errors.Is(err, cca.ErrPortQuiescing) {
			break // shed before any acquisition: nothing to release
		} else if err == nil {
			caller.svc.ReleasePort("sum")
		}
		if time.Now().After(deadline) {
			t.Fatal("GetPort never started shedding")
		}
		time.Sleep(time.Millisecond)
	}
	select {
	case err := <-done:
		t.Fatalf("quiesce returned with an acquisition outstanding: %v", err)
	default:
	}

	// Releasing the held acquisition completes the drain.
	if err := caller.svc.ReleasePort("sum"); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatalf("quiesce: %v", err)
	}

	// The port stays gated after Quiesce returns — the quiesced window —
	// until Resume lifts it.
	if _, err := caller.svc.GetPort("sum"); !errors.Is(err, cca.ErrPortQuiescing) {
		t.Errorf("gated GetPort = %v, want ErrPortQuiescing", err)
	}
	if h, _ := f.PortHealth("adder", "add"); h != cca.HealthDegraded {
		t.Errorf("health during window = %v, want Degraded", h)
	}
	if err := f.Resume("adder", "add"); err != nil {
		t.Fatal(err)
	}
	if _, err := caller.svc.GetPort("sum"); err != nil {
		t.Errorf("GetPort after resume: %v", err)
	}
	caller.svc.ReleasePort("sum")
	if h, _ := f.PortHealth("adder", "add"); h != cca.HealthHealthy {
		t.Errorf("health after resume = %v", h)
	}

	emu.Lock()
	defer emu.Unlock()
	var sawDegraded, sawRestored bool
	for _, k := range events {
		switch k {
		case cca.EventConnectionDegraded:
			sawDegraded = true
		case cca.EventConnectionRestored:
			if !sawDegraded {
				t.Error("Restored before Degraded")
			}
			sawRestored = true
		}
	}
	if !sawDegraded || !sawRestored {
		t.Errorf("events = %v, want Degraded then Restored", events)
	}
}

func TestQuiesceDrainTimeout(t *testing.T) {
	f, caller, _ := newStatefulConnected(t, 0)
	if _, err := caller.svc.GetPort("sum"); err != nil {
		t.Fatal(err)
	}
	err := f.Quiesce("adder", "add", 20*time.Millisecond)
	if !errors.Is(err, ErrDrainTimeout) {
		t.Fatalf("quiesce with wedged caller = %v, want ErrDrainTimeout", err)
	}
	// The failed quiesce resumed the port: callers are not stranded.
	caller.svc.ReleasePort("sum")
	if _, err := caller.svc.GetPort("sum"); err != nil {
		t.Errorf("GetPort after drain timeout: %v", err)
	}
	caller.svc.ReleasePort("sum")
	if h, _ := f.PortHealth("adder", "add"); h != cca.HealthHealthy {
		t.Errorf("health after drain timeout = %v", h)
	}
}

func TestQuiesceUnknownTargets(t *testing.T) {
	f, _, _ := newStatefulConnected(t, 0)
	if err := f.Quiesce("ghost", "add", 0); !errors.Is(err, ErrComponentUnknown) {
		t.Errorf("unknown component = %v", err)
	}
	if err := f.Quiesce("adder", "ghost", 0); !errors.Is(err, cca.ErrPortUnknown) {
		t.Errorf("unknown port = %v", err)
	}
	if err := f.Resume("ghost", "add"); !errors.Is(err, ErrComponentUnknown) {
		t.Errorf("resume unknown component = %v", err)
	}
	if err := f.Resume("adder", "ghost"); !errors.Is(err, cca.ErrPortUnknown) {
		t.Errorf("resume unknown port = %v", err)
	}
}

func TestServicesQuiescer(t *testing.T) {
	// Components reach quiesce through the standard services handle: the
	// cca.Quiescer optional interface.
	f, _, adder := newStatefulConnected(t, 0)
	q, ok := adder.svc.(cca.Quiescer)
	if !ok {
		t.Fatal("services does not implement cca.Quiescer")
	}
	if err := q.Quiesce("add"); err != nil {
		t.Fatal(err)
	}
	if h, _ := f.PortHealth("adder", "add"); h != cca.HealthDegraded {
		t.Errorf("health = %v", h)
	}
	if err := q.Resume("add"); err != nil {
		t.Fatal(err)
	}
	if h, _ := f.PortHealth("adder", "add"); h != cca.HealthHealthy {
		t.Errorf("health = %v", h)
	}
}

func TestSwapCarriesStateAndRewires(t *testing.T) {
	f, caller, old := newStatefulConnected(t, 2)
	var swapped, restored atomic.Int32
	f.AddEventListener(cca.EventListenerFunc(func(e cca.Event) {
		switch e.Kind {
		case cca.EventComponentSwapped:
			swapped.Add(1)
		case cca.EventConnectionRestored:
			restored.Add(1)
		}
	}))
	if got, _ := caller.Compute(1, 2); got != 5 {
		t.Fatalf("pre-swap Compute = %v", got)
	}

	repl := &statefulAdder{}
	if err := f.Swap("adder", repl, SwapOptions{}); err != nil {
		t.Fatal(err)
	}

	// The caller's connection now lands on the replacement instance —
	// the §6.2 direct-connect guarantee holds across the swap.
	p, err := caller.svc.GetPort("sum")
	if err != nil {
		t.Fatal(err)
	}
	if p.(*statefulAdder) != repl {
		t.Error("connection still points at the old instance")
	}
	caller.svc.ReleasePort("sum")

	// State carried: the replacement computes with the old bias.
	if got, _ := caller.Compute(1, 2); got != 5 {
		t.Errorf("post-swap Compute = %v, want 5 (bias carried)", got)
	}
	if comp, _ := f.Component("adder"); comp != cca.Component(repl) {
		t.Error("instance table not updated")
	}
	if h, _ := f.PortHealth("adder", "add"); h != cca.HealthHealthy {
		t.Errorf("post-swap health = %v", h)
	}
	if !old.released.Load() {
		t.Error("old component's ReleaseServices never ran")
	}
	if swapped.Load() != 1 || restored.Load() == 0 {
		t.Errorf("events: swapped=%d restored=%d", swapped.Load(), restored.Load())
	}
}

func TestSwapExplicitState(t *testing.T) {
	f, caller, _ := newStatefulConnected(t, 2)
	state, err := ckpt.Marshal(&statefulAdder{bias: 7})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Swap("adder", &statefulAdder{}, SwapOptions{State: state}); err != nil {
		t.Fatal(err)
	}
	if got, _ := caller.Compute(1, 2); got != 10 {
		t.Errorf("Compute = %v, want 10 (explicit state wins over captured)", got)
	}
}

func TestSwapStateRequiresCheckpointable(t *testing.T) {
	f, caller, _ := newStatefulConnected(t, 2)
	// adderComponent (no Checkpoint/Restore) cannot accept carried state:
	// the swap must fail typed and roll back.
	err := f.Swap("adder", &adderComponent{}, SwapOptions{State: []byte("state")})
	if !errors.Is(err, ErrSwap) {
		t.Fatalf("swap = %v, want ErrSwap", err)
	}
	if got, _ := caller.Compute(1, 2); got != 5 {
		t.Errorf("Compute after failed swap = %v, want old answer", got)
	}
	if h, _ := f.PortHealth("adder", "add"); h != cca.HealthHealthy {
		t.Errorf("health after rollback = %v", h)
	}
}

// otherPortComponent provides a port the caller is not connected to.
type otherPortComponent struct{}

func (o *otherPortComponent) SetServices(svc cca.Services) error {
	return svc.AddProvidesPort(o, cca.PortInfo{Name: "other", Type: "test.Other"})
}

func TestSwapRollbackOnMissingPort(t *testing.T) {
	f, caller, _ := newStatefulConnected(t, 2)
	var swapped atomic.Int32
	f.AddEventListener(cca.EventListenerFunc(func(e cca.Event) {
		if e.Kind == cca.EventComponentSwapped {
			swapped.Add(1)
		}
	}))
	err := f.Swap("adder", &otherPortComponent{}, SwapOptions{})
	if !errors.Is(err, ErrSwap) {
		t.Fatalf("swap = %v, want ErrSwap", err)
	}
	if got, _ := caller.Compute(1, 2); got != 5 {
		t.Errorf("Compute after failed swap = %v", got)
	}
	if h, _ := f.PortHealth("adder", "add"); h != cca.HealthHealthy {
		t.Errorf("health after rollback = %v", h)
	}
	if swapped.Load() != 0 {
		t.Error("failed swap emitted ComponentSwapped")
	}
}

func TestQuiesceDrainNoFalseZero(t *testing.T) {
	// Regression for an acquire/drain TOCTOU: GetPort publishes its
	// outstanding count BEFORE reading the quiesce gate, so Quiesce can
	// never observe a false zero and return "drained" while a caller is
	// about to walk off with the old port. Workers flag a violation when
	// an acquisition succeeds inside the post-drain, pre-resume window.
	f, caller, _ := newStatefulConnected(t, 0)
	var (
		window     atomic.Bool // true between Quiesce return and Resume
		violations atomic.Int64
		stop       = make(chan struct{})
		wg         sync.WaitGroup
	)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := caller.svc.GetPort("sum"); err != nil {
					// Shed: nothing acquired. Back off like a real retry
					// loop would, so single-core runs don't starve the
					// quiescer goroutine under pure shed churn.
					time.Sleep(50 * time.Microsecond)
					continue
				}
				// If we hold the port, the drain must still be waiting on
				// us — it cannot have returned before our ReleasePort.
				if window.Load() {
					violations.Add(1)
				}
				caller.svc.ReleasePort("sum")
			}
		}()
	}
	for i := 0; i < 100; i++ {
		if err := f.Quiesce("adder", "add", 5*time.Second); err != nil {
			t.Fatal(err)
		}
		window.Store(true)
		runtime.Gosched()
		window.Store(false)
		if err := f.Resume("adder", "add"); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	if v := violations.Load(); v != 0 {
		t.Fatalf("%d acquisitions succeeded inside the drained window", v)
	}
}

// twoPortAdder additionally provides an "extra" AddPort that nothing is
// connected to at swap-check time — the hole the step-4 revalidation pass
// must cover.
type twoPortAdder struct{ statefulAdder }

func (a *twoPortAdder) SetServices(svc cca.Services) error {
	a.svc = svc
	if err := svc.AddProvidesPort(a, cca.PortInfo{Name: "add", Type: "test.AddPort"}); err != nil {
		return err
	}
	return svc.AddProvidesPort(a, cca.PortInfo{Name: "extra", Type: "test.AddPort"})
}

// hookedAdder runs a hook during Restore — that is, inside the swap's step
// 3, after the read-locked compatibility check released its lock and
// before the rewire takes the write lock.
type hookedAdder struct {
	statefulAdder
	onRestore func() error
}

func (h *hookedAdder) Restore(rd io.Reader) error {
	if h.onRestore != nil {
		if err := h.onRestore(); err != nil {
			return err
		}
	}
	return h.statefulAdder.Restore(rd)
}

func TestSwapAbortsOnLateConnection(t *testing.T) {
	// A Connect that lands between the compatibility check and the rewire,
	// on a provides port the replacement lacks, must abort the swap with
	// ErrSwap — not rewire the connection through a zero-value entry whose
	// nil port a later GetPort would hand to a caller.
	f := New(Options{})
	old := &twoPortAdder{statefulAdder{bias: 2}}
	caller := &callerComponent{}
	late := &callerComponent{}
	for name, comp := range map[string]cca.Component{
		"adder": old, "caller": caller, "late": late,
	} {
		if err := f.Install(name, comp); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := f.Connect("caller", "sum", "adder", "add"); err != nil {
		t.Fatal(err)
	}

	repl := &hookedAdder{} // provides only "add"
	repl.onRestore = func() error {
		_, err := f.Connect("late", "sum", "adder", "extra")
		return err
	}
	if err := f.Swap("adder", repl, SwapOptions{}); !errors.Is(err, ErrSwap) {
		t.Fatalf("swap with late connection = %v, want ErrSwap", err)
	}

	// The old assembly is intact and resumed: both the checked and the
	// late connection still reach the old instance.
	if got, _ := caller.Compute(1, 2); got != 5 {
		t.Errorf("caller Compute after aborted swap = %v, want 5", got)
	}
	if got, _ := late.Compute(1, 2); got != 5 {
		t.Errorf("late Compute after aborted swap = %v, want 5", got)
	}
	if comp, _ := f.Component("adder"); comp != cca.Component(old) {
		t.Error("aborted swap replaced the instance")
	}
	if h, _ := f.PortHealth("adder", "add"); h != cca.HealthHealthy {
		t.Errorf("health after aborted swap = %v", h)
	}
}

func TestSwapDrainTimeoutRollsBack(t *testing.T) {
	f, caller, _ := newStatefulConnected(t, 2)
	if _, err := caller.svc.GetPort("sum"); err != nil {
		t.Fatal(err)
	}
	err := f.Swap("adder", &statefulAdder{}, SwapOptions{DrainTimeout: 20 * time.Millisecond})
	if !errors.Is(err, ErrSwap) || !errors.Is(err, ErrDrainTimeout) {
		t.Fatalf("swap with wedged caller = %v, want ErrSwap+ErrDrainTimeout", err)
	}
	caller.svc.ReleasePort("sum")
	if got, _ := caller.Compute(1, 2); got != 5 {
		t.Errorf("Compute after timed-out swap = %v", got)
	}
}

func TestSwapUnknownComponent(t *testing.T) {
	f := New(Options{})
	if err := f.Swap("ghost", &statefulAdder{}, SwapOptions{}); !errors.Is(err, ErrSwap) {
		t.Errorf("swap unknown = %v", err)
	}
}

// relayComponent both provides an AddPort and uses one: swap must carry its
// downstream uses connections to the replacement.
type relayComponent struct {
	svc cca.Services
}

func (r *relayComponent) SetServices(svc cca.Services) error {
	r.svc = svc
	if err := svc.RegisterUsesPort(cca.PortInfo{Name: "inner", Type: "test.AddPort"}); err != nil {
		return err
	}
	return svc.AddProvidesPort(r, cca.PortInfo{Name: "add", Type: "test.AddPort"})
}

func (r *relayComponent) Add(x, y float64) float64 {
	p, err := r.svc.GetPort("inner")
	if err != nil {
		return -1
	}
	defer r.svc.ReleasePort("inner")
	return p.(AddPort).Add(x, y) + 100
}

func TestSwapInheritsUsesConnections(t *testing.T) {
	f := New(Options{})
	caller := &callerComponent{}
	for name, comp := range map[string]cca.Component{
		"adder": &statefulAdder{bias: 1}, "relay": &relayComponent{}, "caller": caller,
	} {
		if err := f.Install(name, comp); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := f.Connect("relay", "inner", "adder", "add"); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Connect("caller", "sum", "relay", "add"); err != nil {
		t.Fatal(err)
	}
	if got, _ := caller.Compute(1, 2); got != 104 {
		t.Fatalf("pre-swap Compute = %v", got)
	}

	repl := &relayComponent{}
	if err := f.Swap("relay", repl, SwapOptions{}); err != nil {
		t.Fatal(err)
	}
	// The replacement relay reaches the adder through the inherited
	// connection, and the caller reaches the replacement relay.
	if got, _ := caller.Compute(1, 2); got != 104 {
		t.Errorf("post-swap Compute = %v, want 104", got)
	}
}

func TestSwapUnderStandingLoad(t *testing.T) {
	// The acceptance criterion, in miniature: callers hammer the port
	// through the swap window and may observe ONLY (a) correct old answers,
	// (b) correct new answers, or (c) the typed retryable shed error.
	f, _, _ := newStatefulConnected(t, 2)
	svc, ok := f.Services("caller")
	if !ok {
		t.Fatal("no caller services")
	}

	const workers = 4
	stop := make(chan struct{})
	bad := make(chan string, workers)
	var sheds, calls atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				p, err := svc.GetPort("sum")
				if err != nil {
					if errors.Is(err, cca.ErrPortQuiescing) {
						sheds.Add(1)
						continue
					}
					select {
					case bad <- err.Error():
					default:
					}
					return
				}
				got := p.(AddPort).Add(1, 2)
				svc.ReleasePort("sum")
				calls.Add(1)
				if got != 5 {
					select {
					case bad <- "wrong answer under swap":
					default:
					}
					return
				}
			}
		}()
	}

	// Let the load establish, then swap — several times, to stress the
	// window repeatedly. Bias 2 is carried every time, so the answer never
	// changes; only the instance identity does.
	time.Sleep(5 * time.Millisecond)
	for i := 0; i < 5; i++ {
		if err := f.Swap("adder", &statefulAdder{}, SwapOptions{}); err != nil {
			t.Fatalf("swap %d under load: %v", i, err)
		}
		time.Sleep(2 * time.Millisecond)
	}
	close(stop)
	wg.Wait()

	select {
	case msg := <-bad:
		t.Fatalf("standing caller saw a non-retryable failure: %s", msg)
	default:
	}
	if calls.Load() == 0 {
		t.Error("standing load made no successful calls")
	}
	t.Logf("standing load: %d calls, %d retryable sheds over 5 swaps", calls.Load(), sheds.Load())
}
