package framework

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"repro/internal/cca"
)

// AddPort is the demo port interface used throughout these tests.
type AddPort interface {
	Add(a, b float64) float64
}

// adderComponent provides an AddPort.
type adderComponent struct {
	svc  cca.Services
	bias float64
}

func (a *adderComponent) SetServices(svc cca.Services) error {
	a.svc = svc
	return svc.AddProvidesPort(a, cca.PortInfo{Name: "add", Type: "test.AddPort"})
}

func (a *adderComponent) Add(x, y float64) float64 { return x + y + a.bias }

// callerComponent uses an AddPort.
type callerComponent struct {
	svc cca.Services
}

func (c *callerComponent) SetServices(svc cca.Services) error {
	c.svc = svc
	return svc.RegisterUsesPort(cca.PortInfo{Name: "sum", Type: "test.AddPort"})
}

// Compute fetches the connected port and calls through it.
func (c *callerComponent) Compute(a, b float64) (float64, error) {
	p, err := c.svc.GetPort("sum")
	if err != nil {
		return 0, err
	}
	defer c.svc.ReleasePort("sum")
	return p.(AddPort).Add(a, b), nil
}

func newConnected(t *testing.T) (*Framework, *callerComponent, *adderComponent) {
	t.Helper()
	f := New(Options{})
	adder := &adderComponent{}
	caller := &callerComponent{}
	if err := f.Install("adder", adder); err != nil {
		t.Fatal(err)
	}
	if err := f.Install("caller", caller); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Connect("caller", "sum", "adder", "add"); err != nil {
		t.Fatal(err)
	}
	return f, caller, adder
}

func TestConnectAndCall(t *testing.T) {
	_, caller, _ := newConnected(t)
	got, err := caller.Compute(2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if got != 5 {
		t.Errorf("Compute = %v", got)
	}
}

func TestDirectConnectIsSameValue(t *testing.T) {
	// The paper's §6.2 guarantee: the user receives the provider's very
	// interface value, so a port call is a plain dynamic dispatch.
	f, caller, adder := newConnected(t)
	_ = f
	p, err := caller.svc.GetPort("sum")
	if err != nil {
		t.Fatal(err)
	}
	if p.(*adderComponent) != adder {
		t.Error("connected port is not the provider's registered value")
	}
}

func TestInstallDuplicate(t *testing.T) {
	f := New(Options{})
	if err := f.Install("a", &adderComponent{}); err != nil {
		t.Fatal(err)
	}
	if err := f.Install("a", &adderComponent{}); !errors.Is(err, ErrComponentExists) {
		t.Errorf("err = %v", err)
	}
}

func TestGetPortUnconnected(t *testing.T) {
	f := New(Options{})
	caller := &callerComponent{}
	if err := f.Install("caller", caller); err != nil {
		t.Fatal(err)
	}
	if _, err := caller.Compute(1, 2); !errors.Is(err, cca.ErrNotConnected) {
		t.Errorf("err = %v", err)
	}
}

func TestGetPortNotRegistered(t *testing.T) {
	f := New(Options{})
	caller := &callerComponent{}
	if err := f.Install("caller", caller); err != nil {
		t.Fatal(err)
	}
	if _, err := caller.svc.GetPort("nonesuch"); !errors.Is(err, cca.ErrPortNotUses) {
		t.Errorf("err = %v", err)
	}
}

func TestConnectTypeMismatch(t *testing.T) {
	f := New(Options{})
	if err := f.Install("adder", &adderComponent{}); err != nil {
		t.Fatal(err)
	}
	mis := &misTypedCaller{}
	if err := f.Install("caller", mis); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Connect("caller", "sum", "adder", "add"); !errors.Is(err, cca.ErrTypeMismatch) {
		t.Errorf("err = %v", err)
	}
}

type misTypedCaller struct{ svc cca.Services }

func (c *misTypedCaller) SetServices(svc cca.Services) error {
	c.svc = svc
	return svc.RegisterUsesPort(cca.PortInfo{Name: "sum", Type: "test.MulPort"})
}

func TestConnectUnknownTargets(t *testing.T) {
	f, _, _ := newConnected(t)
	if _, err := f.Connect("ghost", "sum", "adder", "add"); !errors.Is(err, ErrComponentUnknown) {
		t.Errorf("err = %v", err)
	}
	if _, err := f.Connect("caller", "sum", "adder", "nope"); !errors.Is(err, cca.ErrPortUnknown) {
		t.Errorf("err = %v", err)
	}
	if _, err := f.Connect("caller", "nope", "adder", "add"); !errors.Is(err, cca.ErrPortUnknown) {
		t.Errorf("err = %v", err)
	}
}

func TestMultiConnectionFanOut(t *testing.T) {
	// "one call may correspond to zero or more invocations on provider
	// components."
	f := New(Options{})
	caller := &callerComponent{}
	a1 := &adderComponent{bias: 0}
	a2 := &adderComponent{bias: 100}
	for name, comp := range map[string]cca.Component{"caller": caller, "a1": a1, "a2": a2} {
		if err := f.Install(name, comp); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := f.Connect("caller", "sum", "a1", "add"); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Connect("caller", "sum", "a2", "add"); err != nil {
		t.Fatal(err)
	}
	// GetPort is ambiguous now.
	if _, err := caller.svc.GetPort("sum"); !errors.Is(err, cca.ErrMultiConnected) {
		t.Errorf("GetPort err = %v", err)
	}
	ports, err := caller.svc.GetPorts("sum")
	if err != nil {
		t.Fatal(err)
	}
	if len(ports) != 2 {
		t.Fatalf("%d listeners", len(ports))
	}
	var results []float64
	for _, p := range ports {
		results = append(results, p.(AddPort).Add(1, 2))
	}
	if results[0] != 3 || results[1] != 103 {
		t.Errorf("fan-out results = %v", results)
	}
}

func TestGetPortsUnconnectedIsEmpty(t *testing.T) {
	f := New(Options{})
	caller := &callerComponent{}
	if err := f.Install("caller", caller); err != nil {
		t.Fatal(err)
	}
	ports, err := caller.svc.GetPorts("sum")
	if err != nil || len(ports) != 0 {
		t.Errorf("GetPorts = %v, %v (want empty, nil)", ports, err)
	}
}

func TestDisconnect(t *testing.T) {
	f, caller, _ := newConnected(t)
	conns := f.Connections()
	if len(conns) != 1 {
		t.Fatalf("connections = %v", conns)
	}
	if err := f.Disconnect(conns[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := caller.Compute(1, 1); !errors.Is(err, cca.ErrNotConnected) {
		t.Errorf("post-disconnect err = %v", err)
	}
	if err := f.Disconnect(conns[0]); !errors.Is(err, cca.ErrNotConnected) {
		t.Errorf("double disconnect err = %v", err)
	}
}

func TestRemoveDisconnectsBothSides(t *testing.T) {
	f, caller, _ := newConnected(t)
	if err := f.Remove("adder"); err != nil {
		t.Fatal(err)
	}
	if len(f.Connections()) != 0 {
		t.Errorf("connections survive removal: %v", f.Connections())
	}
	if _, err := caller.Compute(1, 1); !errors.Is(err, cca.ErrNotConnected) {
		t.Errorf("err = %v", err)
	}
	if err := f.Remove("adder"); !errors.Is(err, ErrComponentUnknown) {
		t.Errorf("double remove err = %v", err)
	}
}

func TestEvents(t *testing.T) {
	f := New(Options{})
	var mu sync.Mutex
	var log []string
	f.AddEventListener(cca.EventListenerFunc(func(e cca.Event) {
		mu.Lock()
		log = append(log, e.Kind.String())
		mu.Unlock()
	}))
	adder, caller := &adderComponent{}, &callerComponent{}
	if err := f.Install("adder", adder); err != nil {
		t.Fatal(err)
	}
	if err := f.Install("caller", caller); err != nil {
		t.Fatal(err)
	}
	id, err := f.Connect("caller", "sum", "adder", "add")
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Disconnect(id); err != nil {
		t.Fatal(err)
	}
	if err := f.Remove("adder"); err != nil {
		t.Fatal(err)
	}
	f.ReportFailure("caller", errors.New("boom"))
	want := []string{"component-added", "component-added", "connected", "disconnected", "component-removed", "component-failed"}
	mu.Lock()
	defer mu.Unlock()
	if len(log) != len(want) {
		t.Fatalf("events = %v", log)
	}
	for i := range want {
		if log[i] != want[i] {
			t.Errorf("event[%d] = %s, want %s", i, log[i], want[i])
		}
	}
}

func TestProxyInterposition(t *testing.T) {
	// §6.2: "the provided DirectConnectPort can be translated through a
	// proxy ... without the components on either end needing to know."
	var proxied int
	f := New(Options{
		Proxy: func(p cca.Port, info cca.PortInfo) cca.Port {
			return proxyAdd{inner: p.(AddPort), count: &proxied}
		},
	})
	adder, caller := &adderComponent{}, &callerComponent{}
	if err := f.Install("adder", adder); err != nil {
		t.Fatal(err)
	}
	if err := f.Install("caller", caller); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Connect("caller", "sum", "adder", "add"); err != nil {
		t.Fatal(err)
	}
	got, err := caller.Compute(4, 5)
	if err != nil || got != 9 {
		t.Fatalf("Compute = %v, %v", got, err)
	}
	if proxied != 1 {
		t.Errorf("proxy saw %d calls", proxied)
	}
}

type proxyAdd struct {
	inner AddPort
	count *int
}

func (p proxyAdd) Add(a, b float64) float64 {
	*p.count++
	return p.inner.Add(a, b)
}

func TestFlavorRequirement(t *testing.T) {
	f := New(Options{Flavor: cca.FlavorInProcess})
	if err := f.Install("needy", &needyComponent{}); !errors.Is(err, ErrFlavor) {
		t.Errorf("err = %v", err)
	}
	f2 := New(Options{Flavor: cca.FlavorInProcess | cca.FlavorCollective})
	if err := f2.Install("needy", &needyComponent{}); err != nil {
		t.Errorf("err = %v", err)
	}
}

type needyComponent struct{}

func (n *needyComponent) SetServices(svc cca.Services) error { return nil }
func (n *needyComponent) RequiredFlavor() cca.Flavor         { return cca.FlavorCollective }

func TestSetServicesErrorRollsBack(t *testing.T) {
	f := New(Options{})
	if err := f.Install("bad", badComponent{}); err == nil {
		t.Fatal("install of failing component succeeded")
	}
	if _, ok := f.Component("bad"); ok {
		t.Error("failed component left installed")
	}
}

type badComponent struct{}

func (badComponent) SetServices(svc cca.Services) error { return errors.New("cannot init") }

func TestReleaseServicesOnRemove(t *testing.T) {
	f := New(Options{})
	rc := &releasingComponent{}
	if err := f.Install("r", rc); err != nil {
		t.Fatal(err)
	}
	if err := f.Remove("r"); err != nil {
		t.Fatal(err)
	}
	if !rc.released {
		t.Error("ReleaseServices not called")
	}
}

type releasingComponent struct{ released bool }

func (r *releasingComponent) SetServices(svc cca.Services) error { return nil }
func (r *releasingComponent) ReleaseServices() error {
	r.released = true
	return nil
}

func TestPortNameCollisionAcrossKinds(t *testing.T) {
	f := New(Options{})
	c := &collidingComponent{}
	if err := f.Install("c", c); err == nil {
		t.Fatal("colliding registration accepted")
	}
}

type collidingComponent struct{}

func (collidingComponent) SetServices(svc cca.Services) error {
	if err := svc.RegisterUsesPort(cca.PortInfo{Name: "p", Type: "t"}); err != nil {
		return err
	}
	return svc.AddProvidesPort(struct{}{}, cca.PortInfo{Name: "p", Type: "t"})
}

func TestServicesListingsAndInfo(t *testing.T) {
	_, caller, adder := newConnected(t)
	if names := adder.svc.ProvidesPortNames(); len(names) != 1 || names[0] != "add" {
		t.Errorf("provides = %v", names)
	}
	if names := caller.svc.UsesPortNames(); len(names) != 1 || names[0] != "sum" {
		t.Errorf("uses = %v", names)
	}
	info, ok := caller.svc.PortInfo("sum")
	if !ok || info.Type != "test.AddPort" {
		t.Errorf("info = %+v, %v", info, ok)
	}
	if _, ok := caller.svc.PortInfo("nope"); ok {
		t.Error("phantom port info")
	}
	if caller.svc.ComponentName() != "caller" {
		t.Errorf("component name = %q", caller.svc.ComponentName())
	}
}

func TestConcurrentConnectCallDisconnect(t *testing.T) {
	// Framework mutation must be safe while other goroutines call ports.
	f := New(Options{})
	adder := &adderComponent{}
	if err := f.Install("adder", adder); err != nil {
		t.Fatal(err)
	}
	callers := make([]*callerComponent, 8)
	for i := range callers {
		callers[i] = &callerComponent{}
		if err := f.Install(fmt.Sprintf("c%d", i), callers[i]); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	for i, c := range callers {
		wg.Add(1)
		go func(i int, c *callerComponent) {
			defer wg.Done()
			name := fmt.Sprintf("c%d", i)
			for k := 0; k < 100; k++ {
				id, err := f.Connect(name, "sum", "adder", "add")
				if err != nil {
					t.Errorf("connect: %v", err)
					return
				}
				if got, err := c.Compute(1, float64(k)); err != nil || got != float64(k)+1 {
					t.Errorf("compute: %v %v", got, err)
					return
				}
				if err := f.Disconnect(id); err != nil {
					t.Errorf("disconnect: %v", err)
					return
				}
			}
		}(i, c)
	}
	wg.Wait()
}

func TestParseFlavorRoundTrip(t *testing.T) {
	for _, fl := range []cca.Flavor{0, cca.FlavorInProcess, cca.FlavorInProcess | cca.FlavorCollective | cca.FlavorReflection} {
		got, err := cca.ParseFlavor(fl.String())
		if err != nil || got != fl {
			t.Errorf("round trip %v -> %q -> %v, %v", fl, fl.String(), got, err)
		}
	}
	if _, err := cca.ParseFlavor("quantum"); err == nil {
		t.Error("unknown flavor parsed")
	}
}
