package framework

import (
	"sync"
	"testing"

	"repro/internal/obs"
)

// TestGetPortCallsPackedCounter pins the zero-overhead acquisition count:
// the high half of the inUse word tallies every GetPort, survives release
// and component removal, and surfaces as cca.getport_calls in an obs
// snapshot.
func TestGetPortCallsPackedCounter(t *testing.T) {
	f, caller, _ := newConnected(t)
	base := f.getPortCalls()
	const n = 7
	for i := 0; i < n; i++ {
		if _, err := caller.Compute(1, 2); err != nil {
			t.Fatal(err)
		}
	}
	if got := f.getPortCalls(); got != base+n {
		t.Fatalf("getPortCalls = %d, want %d", got, base+n)
	}
	// The outstanding balance went back to zero even though the
	// acquisition half kept counting.
	svc, _ := f.Services("caller")
	p, err := svc.GetPort("sum")
	if err != nil || p == nil {
		t.Fatalf("GetPort after releases: %v", err)
	}
	if err := svc.ReleasePort("sum"); err != nil {
		t.Fatal(err)
	}
	// Removing the component retires its count rather than losing it.
	before := f.getPortCalls()
	if err := f.Remove("caller"); err != nil {
		t.Fatal(err)
	}
	if got := f.getPortCalls(); got != before {
		t.Fatalf("getPortCalls after Remove = %d, want %d", got, before)
	}
	// The sampled metric is visible through the default registry (summed
	// across every live framework, so only monotonicity is checkable).
	if got := obs.Default.Snapshot().Counters["cca.getport_calls"]; got < before {
		t.Fatalf("snapshot cca.getport_calls = %d, want >= %d", got, before)
	}
}

// TestReleasePortClampStaysClamped pins the packed clamp: releases beyond
// the outstanding balance are no-ops and never disturb the acquisition
// half.
func TestReleasePortClampStaysClamped(t *testing.T) {
	f, caller, _ := newConnected(t)
	base := f.getPortCalls()
	if _, err := caller.Compute(1, 2); err != nil {
		t.Fatal(err)
	}
	svc, _ := f.Services("caller")
	for i := 0; i < 3; i++ {
		if err := svc.ReleasePort("sum"); err != nil {
			t.Fatalf("over-release %d: %v", i, err)
		}
	}
	if got := f.getPortCalls(); got != base+1 {
		t.Fatalf("getPortCalls after over-release = %d, want %d", got, base+1)
	}
	// And the balance is still usable.
	if _, err := caller.Compute(3, 4); err != nil {
		t.Fatal(err)
	}
}

// TestGetPortCallsConcurrent exercises the packed word under parallel
// acquire/release: the acquisition half must equal the exact number of
// successful GetPorts.
func TestGetPortCallsConcurrent(t *testing.T) {
	f, _, _ := newConnected(t)
	base := f.getPortCalls()
	svc, _ := f.Services("caller")
	const workers, per = 8, 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if _, err := svc.GetPort("sum"); err != nil {
					t.Error(err)
					return
				}
				if err := svc.ReleasePort("sum"); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if got := f.getPortCalls(); got != base+workers*per {
		t.Fatalf("getPortCalls = %d, want %d", got, base+workers*per)
	}
}
