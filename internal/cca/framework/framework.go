// Package framework is the reproduction's reference CCA framework — the
// "specific framework implementation" of the paper's Figure 2 and the
// component container that performs port connection: "Significantly, in the
// CCA model, port connection is the responsibility of the framework;
// therefore, a particular component may find itself connected in a variety
// of different ways depending on its environment and mode of use" (§6.1).
//
// The framework implements:
//
//   - component installation and removal with lifecycle callbacks
//     (Component.SetServices, ComponentRelease.ReleaseServices);
//   - direct connection (§6.2): Connect hands the provider's registered
//     interface value to the user's uses port, so a port call costs exactly
//     one Go dynamic dispatch — "nothing more than a direct function call
//     to the connected object";
//   - optional proxy interposition (§6.2: "the provided DirectConnectPort
//     can be translated through a proxy ... without the components on
//     either end of the connection needing to know");
//   - the configuration API's event stream for builders (§4);
//   - compliance-flavor checking (§4).
package framework

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/cca"
	"repro/internal/obs"
)

// Framework instruments. GetPort is the claim-C1 hot path, so it carries
// no per-call instrumentation at all: its acquisition count rides in the
// high half of the inUse word it already maintains (see usesEntry) and is
// sampled at obs snapshot time as cca.getport_calls, so the instrumented
// path is byte-for-byte the bare path (cmd/bench experiment E10). The
// health gauges are fed from the same transitions that drive the PR 3
// connection-event stream (SetPortHealth).
var (
	cGetPorts    = obs.NewCounter("cca.getports_calls")
	cConnects    = obs.NewCounter("cca.connects")
	cDisconnects = obs.NewCounter("cca.disconnects")
	cHealthEvts  = obs.NewCounter("cca.health_transitions")
	gDegraded    = obs.NewGauge("cca.ports_degraded")
	gBroken      = obs.NewGauge("cca.ports_broken")
)

// healthGauge maps a non-healthy state to its gauge (nil for Healthy).
func healthGauge(h cca.Health) *obs.Gauge {
	switch h {
	case cca.HealthDegraded:
		return gDegraded
	case cca.HealthBroken:
		return gBroken
	default:
		return nil
	}
}

// ErrComponent reports component-level installation errors.
var (
	ErrComponentExists  = errors.New("framework: component already installed")
	ErrComponentUnknown = errors.New("framework: no such component")
	ErrFlavor           = errors.New("framework: framework lacks a flavor the component requires")
)

// TypeChecker decides whether a uses-port type may connect to a provides-
// port type. The SIDL runtime installs a subtype-aware checker; the default
// accepts equal type names and treats an empty name as a wildcard.
type TypeChecker func(usesType, providesType string) error

// ProxyFactory optionally wraps a provides port at connect time (§6.2 proxy
// interposition). Returning the port unchanged keeps the direct connection.
type ProxyFactory func(port cca.Port, info cca.PortInfo) cca.Port

// Options configures a Framework.
type Options struct {
	// Flavor is the compliance set this framework advertises. Zero means
	// FlavorInProcess.
	Flavor cca.Flavor
	// TypeCheck overrides the default name-equality port type check.
	TypeCheck TypeChecker
	// Proxy, when non-nil, is applied to every provides port at connect
	// time (the §6.2 interposition ablation).
	Proxy ProxyFactory
}

// Framework is the reference CCA-compliant container.
//
// Locking: mu is a readers-writer lock over the component/port registries.
// Structural mutations (Install/Remove/Connect/Disconnect and port
// registration) take the write lock and replace connection lists with fresh
// immutable snapshots; the hot paths a running pipeline hits on every
// timestep — GetPort, GetPorts, PortInfo, name listings — take only the
// read lock, so concurrent components never serialize on each other and
// claim C1 (§6.2: a port call costs no more than a direct call) survives
// under intra-process parallelism.
type Framework struct {
	mu         sync.RWMutex
	opts       Options
	components map[string]*instance
	listeners  []cca.EventListener
	// retiredAcq preserves the lifetime acquisition counts of uses
	// entries that have been removed, so cca.getport_calls never goes
	// backwards. Guarded by mu.
	retiredAcq uint64
}

type instance struct {
	name string
	comp cca.Component
	svc  *services
}

// New creates an empty framework.
func New(opts Options) *Framework {
	if opts.Flavor == 0 {
		opts.Flavor = cca.FlavorInProcess
	}
	if opts.TypeCheck == nil {
		opts.TypeCheck = defaultTypeCheck
	}
	f := &Framework{opts: opts, components: map[string]*instance{}}
	// Sampled, not counted per call: every live framework contributes its
	// acquisition total when an obs snapshot is taken.
	obs.AddCounterFunc("cca.getport_calls", f.getPortCalls)
	return f
}

// getPortCalls sums lifetime port acquisitions across every uses entry
// plus those of entries already removed — the cca.getport_calls reading.
func (f *Framework) getPortCalls() uint64 {
	f.mu.RLock()
	defer f.mu.RUnlock()
	total := f.retiredAcq
	for _, inst := range f.components {
		for _, ue := range inst.svc.uses {
			total += uint64(ue.inUse.Load()) >> acqShift
		}
	}
	return total
}

func defaultTypeCheck(usesType, providesType string) error {
	if usesType == "" || providesType == "" || usesType == providesType {
		return nil
	}
	return fmt.Errorf("%w: uses %q vs provides %q", cca.ErrTypeMismatch, usesType, providesType)
}

// Flavor reports the framework's advertised compliance flavors.
func (f *Framework) Flavor() cca.Flavor { return f.opts.Flavor }

// AddEventListener registers a configuration-API listener.
func (f *Framework) AddEventListener(l cca.EventListener) {
	f.mu.Lock()
	f.listeners = append(f.listeners, l)
	f.mu.Unlock()
}

// emit must be called WITHOUT f.mu held; it snapshots listeners itself.
func (f *Framework) emit(e cca.Event) {
	f.mu.RLock()
	ls := append([]cca.EventListener(nil), f.listeners...)
	f.mu.RUnlock()
	for _, l := range ls {
		l.OnEvent(e)
	}
}

// Install instantiates comp under the given instance name: it builds the
// component's CCAServices, checks flavor requirements, and invokes
// SetServices (the paper's component lifecycle entry point).
func (f *Framework) Install(name string, comp cca.Component) error {
	if req, ok := comp.(cca.FlavorRequirer); ok {
		if !f.opts.Flavor.Contains(req.RequiredFlavor()) {
			return fmt.Errorf("%w: need %v, have %v", ErrFlavor, req.RequiredFlavor(), f.opts.Flavor)
		}
	}
	svc := &services{fw: f, name: name,
		provides: map[string]providesEntry{}, uses: map[string]*usesEntry{}}
	f.mu.Lock()
	if _, dup := f.components[name]; dup {
		f.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrComponentExists, name)
	}
	f.components[name] = &instance{name: name, comp: comp, svc: svc}
	f.mu.Unlock()

	if err := comp.SetServices(svc); err != nil {
		f.mu.Lock()
		delete(f.components, name)
		f.mu.Unlock()
		f.emit(cca.Event{Kind: cca.EventComponentFailed, Component: name, Err: err})
		return fmt.Errorf("framework: SetServices(%q): %w", name, err)
	}
	f.emit(cca.Event{Kind: cca.EventComponentAdded, Component: name})
	return nil
}

// Remove disconnects and removes a component instance.
func (f *Framework) Remove(name string) error {
	f.mu.Lock()
	inst, ok := f.components[name]
	if !ok {
		f.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrComponentUnknown, name)
	}
	// Collect connections touching this component.
	var drop []cca.ConnectionID
	for _, other := range f.components {
		for _, ue := range other.svc.uses {
			for _, c := range ue.conns {
				if c.id.Provider == name || c.id.User == name {
					drop = append(drop, c.id)
				}
			}
		}
	}
	f.mu.Unlock()
	for _, id := range drop {
		if err := f.Disconnect(id); err != nil && !errors.Is(err, cca.ErrNotConnected) {
			return err
		}
	}
	f.mu.Lock()
	for _, ue := range inst.svc.uses {
		f.retiredAcq += uint64(ue.inUse.Load()) >> acqShift
	}
	delete(f.components, name)
	f.mu.Unlock()
	if rel, ok := inst.comp.(cca.ComponentRelease); ok {
		if err := rel.ReleaseServices(); err != nil {
			f.emit(cca.Event{Kind: cca.EventComponentFailed, Component: name, Err: err})
		}
	}
	f.emit(cca.Event{Kind: cca.EventComponentRemoved, Component: name})
	return nil
}

// Component returns the installed component instance by name.
func (f *Framework) Component(name string) (cca.Component, bool) {
	f.mu.RLock()
	defer f.mu.RUnlock()
	inst, ok := f.components[name]
	if !ok {
		return nil, false
	}
	return inst.comp, true
}

// ComponentNames lists installed instances, sorted.
func (f *Framework) ComponentNames() []string {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return cca.SortedNames(f.components)
}

// Services returns a component's services handle — used by builders and
// tests to inspect port registrations.
func (f *Framework) Services(name string) (cca.Services, bool) {
	f.mu.RLock()
	defer f.mu.RUnlock()
	inst, ok := f.components[name]
	if !ok {
		return nil, false
	}
	return inst.svc, true
}

// Connect links user's uses port to provider's provides port (Figure 3
// steps 2–3): the framework fetches the provider's registered interface
// value — optionally interposing a proxy — and appends it to the uses
// port's listener list.
func (f *Framework) Connect(user, usesPort, provider, providesPort string) (cca.ConnectionID, error) {
	id := cca.ConnectionID{User: user, UsesPort: usesPort, Provider: provider, ProvidesPort: providesPort}

	f.mu.Lock()
	uInst, ok := f.components[user]
	if !ok {
		f.mu.Unlock()
		return id, fmt.Errorf("%w: %q", ErrComponentUnknown, user)
	}
	pInst, ok := f.components[provider]
	if !ok {
		f.mu.Unlock()
		return id, fmt.Errorf("%w: %q", ErrComponentUnknown, provider)
	}
	pe, ok := pInst.svc.provides[providesPort]
	if !ok {
		f.mu.Unlock()
		return id, fmt.Errorf("%w: %s.%s", cca.ErrPortUnknown, provider, providesPort)
	}
	ue, ok := uInst.svc.uses[usesPort]
	if !ok {
		f.mu.Unlock()
		return id, fmt.Errorf("%w: %s.%s", cca.ErrPortUnknown, user, usesPort)
	}
	if err := f.opts.TypeCheck(ue.info.Type, pe.info.Type); err != nil {
		f.mu.Unlock()
		return id, err
	}
	port := pe.port
	if f.opts.Proxy != nil {
		port = f.opts.Proxy(port, pe.info)
	}
	// Swap in a fresh snapshot rather than appending in place: readers that
	// captured the old slice under the read lock keep a consistent view.
	next := make([]connection, len(ue.conns)+1)
	copy(next, ue.conns)
	next[len(ue.conns)] = connection{id: id, port: port, health: pe.health, gate: pe.gate}
	ue.conns = next
	f.mu.Unlock()

	cConnects.Inc()
	f.emit(cca.Event{Kind: cca.EventConnected, Connection: id})
	return id, nil
}

// Disconnect severs a connection previously made by Connect.
func (f *Framework) Disconnect(id cca.ConnectionID) error {
	f.mu.Lock()
	uInst, ok := f.components[id.User]
	if !ok {
		f.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrComponentUnknown, id.User)
	}
	ue, ok := uInst.svc.uses[id.UsesPort]
	if !ok {
		f.mu.Unlock()
		return fmt.Errorf("%w: %s.%s", cca.ErrPortUnknown, id.User, id.UsesPort)
	}
	found := false
	for i, c := range ue.conns {
		if c.id == id {
			// Snapshot swap (copy-on-write): never edit the published slice.
			next := make([]connection, 0, len(ue.conns)-1)
			next = append(next, ue.conns[:i]...)
			next = append(next, ue.conns[i+1:]...)
			ue.conns = next
			found = true
			break
		}
	}
	f.mu.Unlock()
	if !found {
		return fmt.Errorf("%w: %v", cca.ErrNotConnected, id)
	}
	cDisconnects.Inc()
	f.emit(cca.Event{Kind: cca.EventDisconnected, Connection: id})
	return nil
}

// Connections lists every live connection, in no particular order.
func (f *Framework) Connections() []cca.ConnectionID {
	f.mu.RLock()
	defer f.mu.RUnlock()
	var out []cca.ConnectionID
	for _, inst := range f.components {
		for _, ue := range inst.svc.uses {
			for _, c := range ue.conns {
				out = append(out, c.id)
			}
		}
	}
	return out
}

// ReportFailure lets a component (or supervising code) notify builders of a
// component failure through the configuration API.
func (f *Framework) ReportFailure(component string, err error) {
	f.emit(cca.Event{Kind: cca.EventComponentFailed, Component: component, Err: err})
}

// SetPortHealth records the health of a provides port and notifies
// listeners of the transition on every live connection to it. It is the
// bridge between a transport supervisor (orb.Supervised via dist) and the
// configuration API: Degraded emits EventConnectionDegraded, Broken emits
// EventConnectionBroken, and a return to Healthy emits
// EventConnectionRestored. Setting the current state again is a no-op.
// While a port is Broken, GetPort on any connection to it fails with
// cca.ErrConnectionBroken.
func (f *Framework) SetPortHealth(component, port string, h cca.Health, cause error) error {
	f.mu.Lock()
	inst, ok := f.components[component]
	if !ok {
		f.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrComponentUnknown, component)
	}
	pe, ok := inst.svc.provides[port]
	if !ok {
		f.mu.Unlock()
		return fmt.Errorf("%w: provides %s.%s", cca.ErrPortUnknown, component, port)
	}
	prev := cca.Health(pe.health.Swap(int32(h)))
	var affected []cca.ConnectionID
	if prev != h {
		for _, other := range f.components {
			for _, ue := range other.svc.uses {
				for _, c := range ue.conns {
					if c.id.Provider == component && c.id.ProvidesPort == port {
						affected = append(affected, c.id)
					}
				}
			}
		}
	}
	f.mu.Unlock()
	if prev == h {
		return nil
	}
	cHealthEvts.Inc()
	// The port's contribution moves between the non-healthy gauges; a
	// Healthy port contributes to neither.
	if g := healthGauge(prev); g != nil {
		g.Add(-1)
	}
	if g := healthGauge(h); g != nil {
		g.Add(1)
	}
	kind := cca.EventConnectionRestored
	switch h {
	case cca.HealthDegraded:
		kind = cca.EventConnectionDegraded
	case cca.HealthBroken:
		kind = cca.EventConnectionBroken
	}
	if len(affected) == 0 {
		// No connections yet: the state still sticks on the provides entry
		// (later connects inherit it); surface the transition at component
		// granularity so monitors see supervisor activity either way.
		f.emit(cca.Event{Kind: kind, Component: component, Err: cause})
		return nil
	}
	for _, id := range affected {
		f.emit(cca.Event{Kind: kind, Component: component, Connection: id, Err: cause})
	}
	return nil
}

// PortHealth reports the recorded health of a provides port (Healthy for
// ports no supervisor has ever reported on).
func (f *Framework) PortHealth(component, port string) (cca.Health, error) {
	f.mu.RLock()
	defer f.mu.RUnlock()
	inst, ok := f.components[component]
	if !ok {
		return cca.HealthHealthy, fmt.Errorf("%w: %q", ErrComponentUnknown, component)
	}
	pe, ok := inst.svc.provides[port]
	if !ok {
		return cca.HealthHealthy, fmt.Errorf("%w: provides %s.%s", cca.ErrPortUnknown, component, port)
	}
	return cca.Health(pe.health.Load()), nil
}

// --- services implementation ---

type providesEntry struct {
	port cca.Port
	info cca.PortInfo
	// health is the shared health cell for every connection to this
	// provides port. Connections copy the pointer at connect time, so a
	// health transition reported once (SetPortHealth) is visible to every
	// GetPort through any connection snapshot without republishing slices.
	health *atomic.Int32
	// gate is the shared quiesce gate: while set, GetPort acquisitions of
	// any connection to this port shed with cca.ErrPortQuiescing (typed
	// retryable) so the provider can drain to zero outstanding calls for a
	// checkpoint or swap. Shared by pointer exactly like health.
	gate *atomic.Bool
}

type connection struct {
	id     cca.ConnectionID
	port   cca.Port
	health *atomic.Int32 // shared with the provides entry; nil ⇒ always healthy
	gate   *atomic.Bool  // shared quiesce gate; nil ⇒ never quiesced
}

// inUse packing: the low 32 bits of usesEntry.inUse hold the
// currently-outstanding port count (the in-use balance GetPort/ReleasePort
// maintain), the high 32 bits the lifetime acquisition count. One atomic
// RMW updates both, so observability adds zero instructions to the
// claim-C1 hot path; obs snapshots read the high half lazily.
const (
	acqShift = 32
	acqOne   = int64(1) << acqShift
	outMask  = acqOne - 1
)

type usesEntry struct {
	info cca.PortInfo
	// conns is an immutable snapshot: writers (Connect/Disconnect, under
	// the framework write lock) replace the whole slice and never mutate
	// it in place, so a reader may use a captured snapshot after dropping
	// the read lock.
	conns []connection
	// inUse is atomic because GetPort/ReleasePort adjust it while holding
	// only the read lock. See the packing constants above: low half is
	// the outstanding balance, high half the lifetime acquisition count.
	inUse atomic.Int64
}

// services implements cca.Services for one component instance. Mutating
// operations take the framework write lock; GetPort/GetPorts take only the
// read lock, and the returned port is called without any framework
// involvement (the §6.2 zero-overhead path).
type services struct {
	fw       *Framework
	name     string
	provides map[string]providesEntry
	uses     map[string]*usesEntry
}

var _ cca.Services = (*services)(nil)

// ComponentName implements cca.Services.
func (s *services) ComponentName() string { return s.name }

// AddProvidesPort implements cca.Services.
func (s *services) AddProvidesPort(port cca.Port, info cca.PortInfo) error {
	if port == nil {
		return cca.ErrNilPort
	}
	if info.Name == "" {
		return fmt.Errorf("%w: empty port name", cca.ErrPortUnknown)
	}
	s.fw.mu.Lock()
	defer s.fw.mu.Unlock()
	if _, dup := s.provides[info.Name]; dup {
		return fmt.Errorf("%w: provides %s.%s", cca.ErrPortExists, s.name, info.Name)
	}
	if _, dup := s.uses[info.Name]; dup {
		return fmt.Errorf("%w: %s.%s registered as uses", cca.ErrPortExists, s.name, info.Name)
	}
	s.provides[info.Name] = providesEntry{port: port, info: info,
		health: new(atomic.Int32), gate: new(atomic.Bool)}
	return nil
}

// RemoveProvidesPort implements cca.Services.
func (s *services) RemoveProvidesPort(name string) error {
	s.fw.mu.Lock()
	defer s.fw.mu.Unlock()
	if _, ok := s.provides[name]; !ok {
		return fmt.Errorf("%w: provides %s.%s", cca.ErrPortUnknown, s.name, name)
	}
	delete(s.provides, name)
	return nil
}

// RegisterUsesPort implements cca.Services.
func (s *services) RegisterUsesPort(info cca.PortInfo) error {
	if info.Name == "" {
		return fmt.Errorf("%w: empty port name", cca.ErrPortUnknown)
	}
	s.fw.mu.Lock()
	defer s.fw.mu.Unlock()
	if _, dup := s.uses[info.Name]; dup {
		return fmt.Errorf("%w: uses %s.%s", cca.ErrPortExists, s.name, info.Name)
	}
	if _, dup := s.provides[info.Name]; dup {
		return fmt.Errorf("%w: %s.%s registered as provides", cca.ErrPortExists, s.name, info.Name)
	}
	s.uses[info.Name] = &usesEntry{info: info}
	return nil
}

// UnregisterUsesPort implements cca.Services.
func (s *services) UnregisterUsesPort(name string) error {
	s.fw.mu.Lock()
	defer s.fw.mu.Unlock()
	ue, ok := s.uses[name]
	if !ok {
		return fmt.Errorf("%w: uses %s.%s", cca.ErrPortUnknown, s.name, name)
	}
	if len(ue.conns) > 0 {
		return fmt.Errorf("cca: uses %s.%s still has %d connections", s.name, name, len(ue.conns))
	}
	s.fw.retiredAcq += uint64(ue.inUse.Load()) >> acqShift
	delete(s.uses, name)
	return nil
}

// GetPort implements cca.Services. It is the framework's hottest read path
// (Figure 3 step 4, executed by every component on every use), so it takes
// only the read lock: the connection list is an immutable snapshot and the
// use count is atomic, so concurrent callers never serialize.
func (s *services) GetPort(name string) (cca.Port, error) {
	s.fw.mu.RLock()
	ue, ok := s.uses[name]
	var conns []connection
	if ok {
		conns = ue.conns
	}
	s.fw.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: uses %s.%s", cca.ErrPortNotUses, s.name, name)
	}
	switch len(conns) {
	case 0:
		return nil, fmt.Errorf("%w: %s.%s", cca.ErrNotConnected, s.name, name)
	case 1:
		// A Broken connection fails fast with a typed error rather than
		// handing out a port whose every call would hang on a dead peer —
		// the framework-interposed half of the supervision contract.
		if h := conns[0].health; h != nil && cca.Health(h.Load()) == cca.HealthBroken {
			return nil, fmt.Errorf("%w: %v", cca.ErrConnectionBroken, conns[0].id)
		}
		// Quiesce interplay, in two checks. The first is a pure fast-path
		// shed: a caller arriving while the gate is already up sheds with
		// the typed retryable error without touching the counter, so
		// hot-loop retries cannot flicker the balance and starve the
		// drain's zero sample. It is NOT sufficient alone — a caller could
		// load gate==false, be preempted while the drain scans a (still)
		// zero balance and declares the port drained, then resume and walk
		// off with a port whose component is mid-checkpoint/swap.
		if g := conns[0].gate; g != nil && g.Load() {
			return nil, fmt.Errorf("%w: %v", cca.ErrPortQuiescing, conns[0].id)
		}
		// So: publish the outstanding acquisition FIRST, then re-check.
		// With the increment ahead of the gate load (both sequentially
		// consistent), either the drain sees our balance and waits, or we
		// see the gate and roll back — no false-zero window either way.
		ue.inUse.Add(acqOne | 1) // one acquisition, one outstanding
		if g := conns[0].gate; g != nil && g.Load() {
			// Lost the race with Quiesce: roll back the outstanding half
			// (the monotonic acquisition count keeps the shed attempt).
			ue.releaseOutstanding(1)
			return nil, fmt.Errorf("%w: %v", cca.ErrPortQuiescing, conns[0].id)
		}
		return conns[0].port, nil
	default:
		return nil, fmt.Errorf("%w: %s.%s has %d", cca.ErrMultiConnected, s.name, name, len(conns))
	}
}

// GetPorts implements cca.Services. Read lock only; see GetPort.
func (s *services) GetPorts(name string) ([]cca.Port, error) {
	s.fw.mu.RLock()
	ue, ok := s.uses[name]
	var conns []connection
	if ok {
		conns = ue.conns
	}
	s.fw.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: uses %s.%s", cca.ErrPortNotUses, s.name, name)
	}
	// Two-phase gate handling, exactly as in GetPort: a counter-free
	// fast-path shed for gates already up, then acquire-before-re-check so
	// a concurrent drain either waits on our published balance or we
	// observe its gate and roll back — never a false zero.
	out := make([]cca.Port, len(conns))
	for i, c := range conns {
		if g := c.gate; g != nil && g.Load() {
			return nil, fmt.Errorf("%w: %v", cca.ErrPortQuiescing, c.id)
		}
		out[i] = c.port
	}
	n := int64(len(conns))
	ue.inUse.Add(n<<acqShift | n)
	for _, c := range conns {
		if g := c.gate; g != nil && g.Load() {
			ue.releaseOutstanding(n)
			return nil, fmt.Errorf("%w: %v", cca.ErrPortQuiescing, c.id)
		}
	}
	cGetPorts.Inc()
	return out, nil
}

// ReleasePort implements cca.Services.
func (s *services) ReleasePort(name string) error {
	s.fw.mu.RLock()
	ue, ok := s.uses[name]
	s.fw.mu.RUnlock()
	if !ok {
		return fmt.Errorf("%w: uses %s.%s", cca.ErrPortNotUses, s.name, name)
	}
	ue.releaseOutstanding(1)
	return nil
}

// releaseOutstanding is a clamped decrement of n from the outstanding
// (low) half of inUse: never drop below zero even under unbalanced
// concurrent releases. The acquisition (high) half is monotonic and
// untouched here.
func (ue *usesEntry) releaseOutstanding(n int64) {
	for n > 0 {
		v := ue.inUse.Load()
		out := v & outMask
		if out == 0 {
			return
		}
		d := n
		if d > out {
			d = out
		}
		if ue.inUse.CompareAndSwap(v, v-d) {
			n -= d
		}
	}
}

// ProvidesPortNames implements cca.Services.
func (s *services) ProvidesPortNames() []string {
	s.fw.mu.RLock()
	defer s.fw.mu.RUnlock()
	return cca.SortedNames(s.provides)
}

// UsesPortNames implements cca.Services.
func (s *services) UsesPortNames() []string {
	s.fw.mu.RLock()
	defer s.fw.mu.RUnlock()
	return cca.SortedNames(s.uses)
}

// PortInfo implements cca.Services.
func (s *services) PortInfo(name string) (cca.PortInfo, bool) {
	s.fw.mu.RLock()
	defer s.fw.mu.RUnlock()
	if pe, ok := s.provides[name]; ok {
		return pe.info, true
	}
	if ue, ok := s.uses[name]; ok {
		return ue.info, true
	}
	return cca.PortInfo{}, false
}
