package framework

// This file implements live component replacement: quiesce (drain a
// provides port to zero outstanding acquisitions behind a retryable gate),
// checkpoint transfer, and Swap — atomic re-wiring of every uses-provides
// connection from an old component instance to its replacement under the
// copy-on-write snapshot lock, so standing callers observe only a
// Degraded→Restored window and typed retryable errors, never a torn
// topology.

import (
	"bytes"
	"fmt"
	"time"

	"repro/internal/cca"
	"repro/internal/obs"
)

// Swap/quiesce instruments.
var (
	cQuiesces = obs.NewCounter("cca.quiesces")
	cSwaps    = obs.NewCounter("cca.swaps")
)

// ErrSwap reports hot-swap failures (the old assembly is left intact).
var ErrSwap = fmt.Errorf("framework: swap failed")

// ErrDrainTimeout reports a quiesce drain that did not reach zero
// outstanding acquisitions in time; the port is resumed before return.
var ErrDrainTimeout = fmt.Errorf("framework: quiesce drain timed out")

// defaultDrainTimeout bounds a quiesce drain when the caller passes 0.
const defaultDrainTimeout = 5 * time.Second

// drainPoll is the drain's re-check interval. The outstanding balance is a
// lock-free atomic read, so polling tightly costs little and keeps the
// swap window short.
const drainPoll = 100 * time.Microsecond

// Quiesce gates a provides port for checkpoint or swap: the shared health
// cell flips to Degraded (emitting EventConnectionDegraded on every live
// connection, exactly as a transport supervisor would), new GetPort
// acquisitions shed with cca.ErrPortQuiescing, and the call blocks until
// every outstanding acquisition through a connection to the port has been
// released — at which point no caller holds the provider's interface and
// its state may be captured or the component replaced. On drain timeout
// (0 ⇒ 5s) the port is resumed and ErrDrainTimeout returned, so a wedged
// caller cannot leave the assembly gated forever.
//
// The drain is conservative for multi-connected uses ports: the
// outstanding balance lives on the uses entry (GetPorts fan-out shares
// one counter across its connections), so a uses port connected both to
// the quiescing provider and to others drains only when ALL its
// acquisitions release. Heavy unrelated traffic through such an entry can
// therefore hold the drain — and in the limit produce ErrDrainTimeout —
// even with zero callers on the target port. The trade is deliberate:
// conservatism errs toward "still in use", never toward a false drain.
func (f *Framework) Quiesce(component, port string, timeout time.Duration) error {
	if timeout <= 0 {
		timeout = defaultDrainTimeout
	}
	f.mu.Lock()
	inst, ok := f.components[component]
	if !ok {
		f.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrComponentUnknown, component)
	}
	pe, ok := inst.svc.provides[port]
	if !ok {
		f.mu.Unlock()
		return fmt.Errorf("%w: provides %s.%s", cca.ErrPortUnknown, component, port)
	}
	pe.gate.Store(true)
	drain := f.drainEntriesLocked(component, port)
	f.mu.Unlock()

	cQuiesces.Inc()
	// Degraded is the honest state for the window: supervised monitors see
	// the same transition a reconnecting transport would produce.
	_ = f.SetPortHealth(component, port, cca.HealthDegraded, cca.ErrPortQuiescing)

	deadline := time.Now().Add(timeout)
	for {
		busy := false
		for _, ue := range drain {
			if ue.inUse.Load()&outMask != 0 {
				busy = true
				break
			}
		}
		if !busy {
			return nil
		}
		if time.Now().After(deadline) {
			_ = f.Resume(component, port)
			return fmt.Errorf("%w: %s.%s after %v", ErrDrainTimeout, component, port, timeout)
		}
		time.Sleep(drainPoll)
	}
}

// revalidateSwapLocked repeats the step-1 compatibility check under the
// step-4 write lock, where the topology can no longer move: every
// connection about to be rewired must resolve to a provides (or uses)
// entry the replacement actually registered, and late-arriving
// connections — connected after the read-locked check — must still
// type-check. Caller holds f.mu for writing.
func (f *Framework) revalidateSwapLocked(name string, old *instance, newSvc *services) error {
	for _, other := range f.components {
		if other == old {
			continue
		}
		for _, ue := range other.svc.uses {
			for _, c := range ue.conns {
				if c.id.Provider != name {
					continue
				}
				npe, ok := newSvc.provides[c.id.ProvidesPort]
				if !ok {
					return fmt.Errorf("connection %v arrived during swap: replacement lacks provides port %q", c.id, c.id.ProvidesPort)
				}
				if err := f.opts.TypeCheck(ue.info.Type, npe.info.Type); err != nil {
					return fmt.Errorf("connection %v arrived during swap: %w", c.id, err)
				}
			}
		}
	}
	for uname, oldUE := range old.svc.uses {
		if len(oldUE.conns) == 0 {
			continue
		}
		if _, ok := newSvc.uses[uname]; !ok {
			return fmt.Errorf("uses port %s.%s connected during swap: replacement lacks it", name, uname)
		}
		for _, c := range oldUE.conns {
			if c.id.Provider != name {
				continue
			}
			if _, ok := newSvc.provides[c.id.ProvidesPort]; !ok {
				return fmt.Errorf("self-connection %v arrived during swap: replacement lacks provides port %q", c.id, c.id.ProvidesPort)
			}
		}
	}
	return nil
}

// drainEntriesLocked collects the uses entries holding a connection to the
// given provides port — the entries whose outstanding balances the drain
// must see reach zero. Caller holds f.mu.
func (f *Framework) drainEntriesLocked(component, port string) []*usesEntry {
	var out []*usesEntry
	for _, other := range f.components {
		for _, ue := range other.svc.uses {
			for _, c := range ue.conns {
				if c.id.Provider == component && c.id.ProvidesPort == port {
					out = append(out, ue)
					break
				}
			}
		}
	}
	return out
}

// Resume reopens a quiesced provides port: the gate lifts and the health
// cell returns to Healthy, emitting EventConnectionRestored.
func (f *Framework) Resume(component, port string) error {
	f.mu.Lock()
	inst, ok := f.components[component]
	if !ok {
		f.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrComponentUnknown, component)
	}
	pe, ok := inst.svc.provides[port]
	if !ok {
		f.mu.Unlock()
		return fmt.Errorf("%w: provides %s.%s", cca.ErrPortUnknown, component, port)
	}
	pe.gate.Store(false)
	f.mu.Unlock()
	return f.SetPortHealth(component, port, cca.HealthHealthy, nil)
}

// Quiesce implements cca.Quiescer on the component's own provides ports
// with the default drain timeout.
func (s *services) Quiesce(port string) error { return s.fw.Quiesce(s.name, port, 0) }

// Resume implements cca.Quiescer.
func (s *services) Resume(port string) error { return s.fw.Resume(s.name, port) }

var _ cca.Quiescer = (*services)(nil)

// SwapOptions tunes Framework.Swap. The zero value is usable.
type SwapOptions struct {
	// DrainTimeout bounds each provides-port quiesce drain (0 ⇒ 5s).
	DrainTimeout time.Duration
	// State, when non-nil, is the checkpoint restored into the replacement
	// (it must implement cca.Checkpointable). When nil and both the old
	// and new components implement cca.Checkpointable, state is captured
	// from the old component during the quiesced window and carried over
	// automatically.
	State []byte
}

// Swap replaces the installed component instance name with repl while the
// assembly runs — the dynamic form of the paper's §2.2 "experiment with
// multiple solution strategies by reconnecting ports" scenario:
//
//  1. repl's ports are registered (SetServices) off to the side and
//     checked against every live connection of the old instance — same
//     port names, compatible SIDL types — before anything is disturbed;
//  2. every connected provides port of the old instance is quiesced:
//     Degraded events fire, new acquisitions shed with the typed
//     retryable cca.ErrPortQuiescing, outstanding calls drain;
//  3. state moves old→new per SwapOptions (checkpoint wire format,
//     opaque to the framework);
//  4. under one write-lock critical section, every connection touching
//     the old instance is re-pointed at the replacement's entries — users
//     of the old component now hold the new ports, the new component
//     inherits the old one's uses connections — and the instance table is
//     updated; readers only ever observe the old or the new topology;
//  5. the gates lift and EventConnectionRestored + EventComponentSwapped
//     fire.
//
// On any failure before step 4 the old assembly is resumed untouched and
// the error returned wraps ErrSwap.
func (f *Framework) Swap(name string, repl cca.Component, opts SwapOptions) error {
	f.mu.RLock()
	old, ok := f.components[name]
	f.mu.RUnlock()
	if !ok {
		return fmt.Errorf("%w: %w: %q", ErrSwap, ErrComponentUnknown, name)
	}
	if req, ok := repl.(cca.FlavorRequirer); ok {
		if !f.opts.Flavor.Contains(req.RequiredFlavor()) {
			return fmt.Errorf("%w: %w: need %v, have %v", ErrSwap, ErrFlavor, req.RequiredFlavor(), f.opts.Flavor)
		}
	}

	// Step 1: let the replacement register its ports off to the side. Its
	// services handle shares the framework (and lock) but is not published
	// until step 4, so registration cannot race the running assembly.
	newSvc := &services{fw: f, name: name,
		provides: map[string]providesEntry{}, uses: map[string]*usesEntry{}}
	if err := repl.SetServices(newSvc); err != nil {
		return fmt.Errorf("%w: SetServices: %w", ErrSwap, err)
	}

	// Compatibility check against every live connection of the old
	// instance, and collect the provides ports that must quiesce.
	f.mu.RLock()
	var quiesce []string
	checkErr := func() error {
		seen := map[string]bool{}
		for _, other := range f.components {
			for _, ue := range other.svc.uses {
				for _, c := range ue.conns {
					switch {
					case c.id.Provider == name:
						npe, ok := newSvc.provides[c.id.ProvidesPort]
						if !ok {
							return fmt.Errorf("replacement lacks provides port %q needed by %v", c.id.ProvidesPort, c.id)
						}
						if err := f.opts.TypeCheck(ue.info.Type, npe.info.Type); err != nil {
							return fmt.Errorf("connection %v: %w", c.id, err)
						}
						if !seen[c.id.ProvidesPort] {
							seen[c.id.ProvidesPort] = true
							quiesce = append(quiesce, c.id.ProvidesPort)
						}
					case c.id.User == name:
						nue, ok := newSvc.uses[c.id.UsesPort]
						if !ok {
							return fmt.Errorf("replacement lacks uses port %q needed by %v", c.id.UsesPort, c.id)
						}
						// Re-check against the provider the connection
						// already has.
						if pInst, ok := f.components[c.id.Provider]; ok {
							if pe, ok := pInst.svc.provides[c.id.ProvidesPort]; ok {
								if err := f.opts.TypeCheck(nue.info.Type, pe.info.Type); err != nil {
									return fmt.Errorf("connection %v: %w", c.id, err)
								}
							}
						}
					}
				}
			}
		}
		return nil
	}()
	f.mu.RUnlock()
	if checkErr != nil {
		return fmt.Errorf("%w: %w", ErrSwap, checkErr)
	}

	// Step 2: quiesce every connected provides port of the old instance.
	for i, port := range quiesce {
		if err := f.Quiesce(name, port, opts.DrainTimeout); err != nil {
			for _, done := range quiesce[:i] {
				_ = f.Resume(name, done)
			}
			return fmt.Errorf("%w: %w", ErrSwap, err)
		}
	}
	resumeAll := func() {
		for _, port := range quiesce {
			_ = f.Resume(name, port)
		}
	}

	// Step 3: carry state. The framework treats the checkpoint as opaque
	// bytes; the wire format is the component's business (internal/ckpt).
	state := opts.State
	oldCk, oldOK := old.comp.(cca.Checkpointable)
	newCk, newOK := repl.(cca.Checkpointable)
	if state == nil && oldOK && newOK {
		var buf bytes.Buffer
		if err := oldCk.Checkpoint(&buf); err != nil {
			resumeAll()
			return fmt.Errorf("%w: checkpoint: %w", ErrSwap, err)
		}
		state = buf.Bytes()
	}
	if state != nil {
		if !newOK {
			resumeAll()
			return fmt.Errorf("%w: replacement %T does not implement cca.Checkpointable", ErrSwap, repl)
		}
		if err := newCk.Restore(bytes.NewReader(state)); err != nil {
			resumeAll()
			return fmt.Errorf("%w: restore: %w", ErrSwap, err)
		}
	}

	// Step 4: the atomic rewire. One write-lock critical section replaces
	// every connection snapshot touching the old instance and publishes
	// the new instance; concurrent GetPort readers see either the old
	// gated topology or the new healthy one.
	f.mu.Lock()
	if cur, ok := f.components[name]; !ok || cur != old {
		f.mu.Unlock()
		resumeAll()
		return fmt.Errorf("%w: instance %q changed during swap", ErrSwap, name)
	}
	// Re-validate before mutating anything: the step-1 compatibility check
	// ran under an earlier read lock that was released, so a Connect() may
	// have landed since — possibly on a port the replacement lacks or one
	// that was never type-checked (and, being unconnected at quiesce time,
	// never gated). Rewiring such a connection would install a zero-value
	// providesEntry whose nil port a later GetPort hands to a caller.
	// Aborting here leaves the old assembly intact.
	if err := f.revalidateSwapLocked(name, old, newSvc); err != nil {
		f.mu.Unlock()
		resumeAll()
		return fmt.Errorf("%w: %w", ErrSwap, err)
	}
	var restored []cca.ConnectionID
	for _, other := range f.components {
		if other == old {
			continue
		}
		for _, ue := range other.svc.uses {
			touched := false
			for _, c := range ue.conns {
				if c.id.Provider == name {
					touched = true
					break
				}
			}
			if !touched {
				continue
			}
			next := make([]connection, len(ue.conns))
			copy(next, ue.conns)
			for i, c := range next {
				if c.id.Provider != name {
					continue
				}
				npe := newSvc.provides[c.id.ProvidesPort] // existence checked in step 1
				port := npe.port
				if f.opts.Proxy != nil {
					port = f.opts.Proxy(port, npe.info)
				}
				next[i] = connection{id: c.id, port: port, health: npe.health, gate: npe.gate}
				restored = append(restored, c.id)
			}
			ue.conns = next
		}
	}
	// The replacement inherits the old instance's uses connections
	// wholesale; a self-connection (old used its own provides port) is
	// re-pointed at the replacement's entry like any other.
	for uname, oldUE := range old.svc.uses {
		if len(oldUE.conns) == 0 {
			continue
		}
		nue, ok := newSvc.uses[uname]
		if !ok { // unreachable: revalidateSwapLocked checked connected entries
			continue
		}
		next := append([]connection(nil), oldUE.conns...)
		for i, c := range next {
			if c.id.Provider != name {
				continue
			}
			npe := newSvc.provides[c.id.ProvidesPort]
			port := npe.port
			if f.opts.Proxy != nil {
				port = f.opts.Proxy(port, npe.info)
			}
			next[i] = connection{id: c.id, port: port, health: npe.health, gate: npe.gate}
			restored = append(restored, c.id)
		}
		nue.conns = next
	}
	// Retire the old entries' lifetime acquisition counts so the sampled
	// cca.getport_calls reading never goes backwards.
	for _, ue := range old.svc.uses {
		f.retiredAcq += uint64(ue.inUse.Load()) >> acqShift
	}
	f.components[name] = &instance{name: name, comp: repl, svc: newSvc}
	f.mu.Unlock()

	// Step 5: account the health transition out of the retired entries (a
	// quiesced port was Degraded; its replacement entry starts Healthy)
	// and announce the window's close.
	for _, port := range quiesce {
		if pe, ok := old.svc.provides[port]; ok {
			if g := healthGauge(cca.Health(pe.health.Load())); g != nil {
				g.Add(-1)
			}
		}
		cHealthEvts.Inc()
	}
	cSwaps.Inc()
	for _, id := range restored {
		f.emit(cca.Event{Kind: cca.EventConnectionRestored, Component: name, Connection: id})
	}
	f.emit(cca.Event{Kind: cca.EventComponentSwapped, Component: name})
	if rel, ok := old.comp.(cca.ComponentRelease); ok {
		if err := rel.ReleaseServices(); err != nil {
			f.emit(cca.Event{Kind: cca.EventComponentFailed, Component: name, Err: err})
		}
	}
	return nil
}
