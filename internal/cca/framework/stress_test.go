package framework

import (
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/cca"
)

// stressPort is a trivial provides-port implementation.
type stressPort struct{ id int }

func (p *stressPort) Ping() int { return p.id }

type stressProvider struct{ port *stressPort }

func (p *stressProvider) SetServices(svc cca.Services) error {
	return svc.AddProvidesPort(p.port, cca.PortInfo{Name: "p", Type: "stress.Ping"})
}

type stressUser struct{ svc cca.Services }

func (u *stressUser) SetServices(svc cca.Services) error {
	u.svc = svc
	return svc.RegisterUsesPort(cca.PortInfo{Name: "u", Type: "stress.Ping"})
}

// TestConcurrentGetPortConnectDisconnect hammers the framework's read hot
// path (GetPort/GetPorts/ReleasePort) from many goroutines while writers
// churn Connect/Disconnect — the exact interleaving the RWMutex-plus-
// snapshot design must survive. Run under -race (CI does); the assertions
// check that readers only ever observe consistent snapshots: every fetched
// port is callable, and the only errors are the expected not-connected /
// multi-connected transients.
func TestConcurrentGetPortConnectDisconnect(t *testing.T) {
	fw := New(Options{})
	user := &stressUser{}
	if err := fw.Install("u", user); err != nil {
		t.Fatal(err)
	}
	const providers = 3
	for i := 0; i < providers; i++ {
		if err := fw.Install(string(rune('a'+i)), &stressProvider{port: &stressPort{id: i}}); err != nil {
			t.Fatal(err)
		}
	}

	var (
		stop     atomic.Bool
		gets     atomic.Int64
		connects atomic.Int64
		wg       sync.WaitGroup
	)

	// Writers: churn connections to all three providers.
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for !stop.Load() {
				var ids []cca.ConnectionID
				for i := 0; i < providers; i++ {
					id, err := fw.Connect("u", "u", string(rune('a'+i)), "p")
					if err != nil {
						t.Errorf("writer %d: connect: %v", w, err)
						return
					}
					ids = append(ids, id)
				}
				connects.Add(int64(len(ids)))
				for _, id := range ids {
					if err := fw.Disconnect(id); err != nil && !errors.Is(err, cca.ErrNotConnected) {
						t.Errorf("writer %d: disconnect: %v", w, err)
						return
					}
				}
			}
		}(w)
	}

	// Readers: GetPort / GetPorts / ReleasePort loops.
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for !stop.Load() {
				p, err := user.svc.GetPort("u")
				switch {
				case err == nil:
					if p.(*stressPort).Ping() < 0 {
						t.Errorf("reader %d: bad port", r)
						return
					}
					gets.Add(1)
					if err := user.svc.ReleasePort("u"); err != nil {
						t.Errorf("reader %d: release: %v", r, err)
						return
					}
				case errors.Is(err, cca.ErrNotConnected), errors.Is(err, cca.ErrMultiConnected):
					// Expected transients while writers churn.
				default:
					t.Errorf("reader %d: unexpected GetPort error: %v", r, err)
					return
				}
				ports, err := user.svc.GetPorts("u")
				if err != nil {
					t.Errorf("reader %d: GetPorts: %v", r, err)
					return
				}
				for _, q := range ports {
					if q.(*stressPort).Ping() < 0 {
						t.Errorf("reader %d: bad fan-out port", r)
						return
					}
				}
				for range ports {
					_ = user.svc.ReleasePort("u")
				}
			}
		}(r)
	}

	// Metadata readers: listings must never see torn state.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for !stop.Load() {
			if n := len(fw.ComponentNames()); n != providers+1 {
				t.Errorf("ComponentNames: %d components, want %d", n, providers+1)
				return
			}
			_ = fw.Connections()
			if _, ok := user.svc.PortInfo("u"); !ok {
				t.Error("PortInfo lost the uses port")
				return
			}
		}
	}()

	deadline := time.After(300 * time.Millisecond)
	for done := false; !done && !t.Failed(); {
		select {
		case <-deadline:
			done = true
		default:
			_ = fw.Connections()
			runtime.Gosched()
		}
	}
	stop.Store(true)
	wg.Wait()
	if connects.Load() == 0 || gets.Load() == 0 {
		t.Fatalf("stress exercised nothing: %d connects, %d gets", connects.Load(), gets.Load())
	}
	t.Logf("stress: %d connects, %d successful gets", connects.Load(), gets.Load())
}
