package framework

import (
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/cca"
	"repro/internal/mpi"
)

// sharedCounter is a thread-safe provides port: every rank calls the SAME
// instance (one representation, per §6.3's shared-memory model).
type sharedCounter struct {
	n int64
}

func (s *sharedCounter) SetServices(svc cca.Services) error {
	return svc.AddProvidesPort(s, cca.PortInfo{Name: "count", Type: "test.Counter"})
}

func (s *sharedCounter) Incr() int64 { return atomic.AddInt64(&s.n, 1) }

type sharedUser struct{}

func (sharedUser) SetServices(svc cca.Services) error {
	return svc.RegisterUsesPort(cca.PortInfo{Name: "count", Type: "test.Counter"})
}

func TestSharedCohortSingleInstance(t *testing.T) {
	const p = 4
	mpi.Run(p, func(comm *mpi.Comm) {
		sc, err := NewSharedCohort(comm, Options{})
		if err != nil {
			t.Errorf("new: %v", err)
			return
		}
		if err := sc.Install("counter", func() cca.Component { return &sharedCounter{} }); err != nil {
			t.Errorf("install: %v", err)
			return
		}
		if err := sc.Install("user", func() cca.Component { return sharedUser{} }); err != nil {
			t.Errorf("install: %v", err)
			return
		}
		if _, err := sc.Connect("user", "count", "counter", "count"); err != nil {
			t.Errorf("connect: %v", err)
			return
		}
		// Every rank increments through the same shared port instance.
		port, err := sc.Port("user", "count")
		if err != nil {
			t.Errorf("port: %v", err)
			return
		}
		c := port.(*sharedCounter)
		for i := 0; i < 10; i++ {
			c.Incr()
		}
		if err := comm.Barrier(); err != nil {
			t.Errorf("barrier: %v", err)
			return
		}
		// One instance, p ranks × 10 increments.
		if got := atomic.LoadInt64(&c.n); got != int64(p*10) {
			t.Errorf("counter = %d, want %d", got, p*10)
		}
		// Exactly one component list, visible identically everywhere.
		if names := sc.F.ComponentNames(); len(names) != 2 {
			t.Errorf("components = %v", names)
		}
	})
}

func TestSharedCohortErrorsOnAllRanks(t *testing.T) {
	mpi.Run(3, func(comm *mpi.Comm) {
		sc, err := NewSharedCohort(comm, Options{})
		if err != nil {
			t.Errorf("new: %v", err)
			return
		}
		if err := sc.Install("x", func() cca.Component { return sharedUser{} }); err != nil {
			t.Errorf("install: %v", err)
			return
		}
		// Duplicate install must fail on EVERY rank, not just rank 0.
		err = sc.Install("x", func() cca.Component { return sharedUser{} })
		if err == nil {
			t.Errorf("rank %d: duplicate install accepted", comm.Rank())
			return
		}
		if comm.Rank() != 0 && !strings.Contains(err.Error(), "failed on rank 0") {
			t.Errorf("rank %d err = %v", comm.Rank(), err)
		}
		if err := sc.Remove("x"); err != nil {
			t.Errorf("remove: %v", err)
		}
	})
}
