package collective

// Tests for the cross-process stream face: Rebased sides, pair-stream
// chunked pack/unpack against the whole-message pack path, and window
// validation.

import (
	"encoding/binary"
	"errors"
	"math"
	"testing"

	"repro/internal/array"
)

func TestRebased(t *testing.T) {
	s := Side{Map: array.NewBlockMap(10, 3)}.Rebased(4)
	if got := s.WorldRanks; len(got) != 3 || got[0] != 4 || got[1] != 5 || got[2] != 6 {
		t.Errorf("WorldRanks = %v", got)
	}
	if got := (Side{}).Rebased(2).WorldRanks; len(got) != 0 {
		t.Errorf("unbound side rebased to %v", got)
	}
}

// crossPlan builds an M→N plan in the synthetic cross-process world:
// provider block map on ranks 0..m−1, consumer cyclic map on m..m+n−1.
func crossPlan(t *testing.T, gl, m, n int) *Plan {
	t.Helper()
	src := Side{Map: array.NewBlockMap(gl, m)}.Rebased(0)
	dst := Side{Map: array.NewCyclicMap(gl, n, 3)}.Rebased(m)
	plan, err := NewPlan(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	return plan
}

// packWhole packs a pair's entire message through the PackRangeBytes path
// in one call.
func packWhole(t *testing.T, s PairStream, local []float64) []byte {
	t.Helper()
	buf := make([]byte, 8*s.Total())
	if err := s.PackRangeBytes(local, 0, s.Total(), buf); err != nil {
		t.Fatal(err)
	}
	return buf
}

func TestPairStreamChunkedEqualsWhole(t *testing.T) {
	const gl, m, n = 101, 3, 2
	plan := crossPlan(t, gl, m, n)
	global := make([]float64, gl)
	for i := range global {
		global[i] = float64(i) * 1.25
	}
	srcMap := array.NewBlockMap(gl, m)
	dstMap := array.NewCyclicMap(gl, n, 3)

	// Provider rank r's local chunk.
	locals := make([][]float64, m)
	for _, r := range srcMap.Runs() {
		if locals[r.Rank] == nil {
			locals[r.Rank] = make([]float64, srcMap.LocalLen(r.Rank))
		}
		for k := 0; k < r.Global.Len(); k++ {
			locals[r.Rank][r.Local+k] = global[r.Global.Lo+k]
		}
	}

	out := make([][]float64, n)
	for d := 0; d < n; d++ {
		out[d] = make([]float64, dstMap.LocalLen(d))
		for _, src := range plan.RecvFrom(m + d) {
			s, ok := plan.Pair(src, m+d)
			if !ok {
				t.Fatalf("RecvFrom lists %d→%d but Pair says no data", src, d)
			}
			whole := packWhole(t, s, locals[src])
			// Re-unpack the same message in awkward chunk sizes and compare
			// against unpacking it whole.
			for _, chunk := range []int{1, 3, 7, s.Total()} {
				got := make([]float64, dstMap.LocalLen(d))
				for lo := 0; lo < s.Total(); lo += chunk {
					hi := lo + chunk
					if hi > s.Total() {
						hi = s.Total()
					}
					if err := s.UnpackBytes(whole[8*lo:8*hi], lo, got); err != nil {
						t.Fatal(err)
					}
				}
				want := make([]float64, dstMap.LocalLen(d))
				if err := s.UnpackBytes(whole, 0, want); err != nil {
					t.Fatal(err)
				}
				for i := range want {
					// Elements this pair does not deliver stay zero in both.
					if got[i] != want[i] {
						t.Fatalf("pair %d→%d chunk=%d elem %d: %v != %v", src, d, chunk, i, got[i], want[i])
					}
				}
			}
			if err := s.UnpackBytes(whole, 0, out[d]); err != nil {
				t.Fatal(err)
			}
		}
	}
	// All pairs together must reassemble the consumer's view exactly.
	for _, r := range dstMap.Runs() {
		for k := 0; k < r.Global.Len(); k++ {
			if got, want := out[r.Rank][r.Local+k], global[r.Global.Lo+k]; got != want {
				t.Fatalf("dst rank %d local %d = %v, want %v", r.Rank, r.Local+k, got, want)
			}
		}
	}
}

func TestPairStreamChunkedPackEqualsWhole(t *testing.T) {
	const gl, m, n = 64, 2, 3
	plan := crossPlan(t, gl, m, n)
	srcMap := array.NewBlockMap(gl, m)
	local := make([]float64, srcMap.LocalLen(0))
	for i := range local {
		local[i] = float64(i) + 0.5
	}
	s, ok := plan.Pair(0, m+1)
	if !ok {
		t.Skip("no 0→1 pair in this geometry")
	}
	whole := packWhole(t, s, local)
	for _, chunk := range []int{1, 5, 13} {
		got := make([]byte, len(whole))
		for lo := 0; lo < s.Total(); lo += chunk {
			hi := lo + chunk
			if hi > s.Total() {
				hi = s.Total()
			}
			if err := s.PackRangeBytes(local, lo, hi, got[8*lo:8*hi]); err != nil {
				t.Fatal(err)
			}
		}
		for i := 0; i < len(whole); i += 8 {
			if binary.LittleEndian.Uint64(got[i:]) != binary.LittleEndian.Uint64(whole[i:]) {
				t.Fatalf("chunk=%d: packed bytes diverge at offset %d", chunk, i)
			}
		}
	}
}

func TestPairStreamValidation(t *testing.T) {
	plan := crossPlan(t, 50, 2, 2)
	s, ok := plan.Pair(0, 2)
	if !ok {
		t.Fatal("expected 0→2 pair")
	}
	local := make([]float64, array.NewBlockMap(50, 2).LocalLen(0))
	out := make([]float64, array.NewCyclicMap(50, 2, 3).LocalLen(0))

	if err := s.PackRangeBytes(local, -1, 1, make([]byte, 16)); !errors.Is(err, ErrBuffer) {
		t.Errorf("negative lo: %v", err)
	}
	if err := s.PackRangeBytes(local, 0, s.Total()+1, make([]byte, 8*(s.Total()+1))); !errors.Is(err, ErrBuffer) {
		t.Errorf("hi past total: %v", err)
	}
	if err := s.PackRangeBytes(local, 0, 2, make([]byte, 8)); !errors.Is(err, ErrBuffer) {
		t.Errorf("short dst: %v", err)
	}
	if err := s.UnpackBytes(make([]byte, 7), 0, out); !errors.Is(err, ErrBuffer) {
		t.Errorf("ragged payload: %v", err)
	}
	if err := s.UnpackBytes(make([]byte, 8*s.Total()), 1, out); !errors.Is(err, ErrBuffer) {
		t.Errorf("window past total: %v", err)
	}
	// Pairs that move no data are absent.
	if _, ok := plan.Pair(0, 0); ok {
		t.Error("provider→provider pair exists")
	}
}

func TestPairStreamLargeParallelWindow(t *testing.T) {
	// Exceed packGrain so forRunsWindow takes the parallel path.
	const gl = 3 * packGrain
	plan := crossPlan(t, gl, 1, 2)
	src := array.NewSerialMap(gl)
	local := make([]float64, src.LocalLen(0))
	for i := range local {
		local[i] = math.Sqrt(float64(i))
	}
	for d := 0; d < 2; d++ {
		s, ok := plan.Pair(0, 1+d)
		if !ok {
			t.Fatalf("missing pair 0→%d", d)
		}
		buf := packWhole(t, s, local)
		out := make([]float64, array.NewCyclicMap(gl, 2, 3).LocalLen(d))
		if err := s.UnpackBytes(buf, 0, out); err != nil {
			t.Fatal(err)
		}
		for i, v := range out {
			if v == 0 && i > 0 {
				t.Fatalf("dst %d elem %d never written", d, i)
			}
		}
	}
}
