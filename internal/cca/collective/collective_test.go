package collective

import (
	"errors"
	"testing"
	"testing/quick"

	"repro/internal/array"
	"repro/internal/mpi"
)

// runTransfer executes a plan over a world of the given size, feeding each
// source rank its slice of the global vector [0,1,2,...]; it returns the
// reassembled destination view.
func runTransfer(t *testing.T, worldSize int, plan *Plan, forced bool) []float64 {
	t.Helper()
	n := plan.GlobalLen()
	global := make([]float64, n)
	for i := range global {
		global[i] = float64(i)
	}
	out := make([]float64, n)
	mpi.Run(worldSize, func(c *mpi.Comm) {
		me := c.Rank()
		var local []float64
		// Build this rank's source chunk from the source map.
		for side, w := range plan.src.WorldRanks {
			if w != me {
				continue
			}
			local = make([]float64, plan.src.Map.LocalLen(side))
			for _, r := range plan.src.Map.Runs() {
				if r.Rank != side {
					continue
				}
				for k := 0; k < r.Global.Len(); k++ {
					local[r.Local+k] = global[r.Global.Lo+k]
				}
			}
		}
		dst := make([]float64, plan.DstLocalLen(me))
		var err error
		if forced {
			err = plan.TransferForced(c, local, dst)
		} else {
			err = plan.Transfer(c, local, dst)
		}
		if err != nil {
			t.Errorf("rank %d transfer: %v", me, err)
			return
		}
		// Scatter back into the global result view (disjoint writes).
		for side, w := range plan.dst.WorldRanks {
			if w != me {
				continue
			}
			for _, r := range plan.dst.Map.Runs() {
				if r.Rank != side {
					continue
				}
				for k := 0; k < r.Global.Len(); k++ {
					out[r.Global.Lo+k] = dst[r.Local+k]
				}
			}
		}
	})
	return out
}

func checkIdentity(t *testing.T, got []float64) {
	t.Helper()
	for i, v := range got {
		if v != float64(i) {
			t.Fatalf("element %d = %v after redistribution", i, v)
		}
	}
}

func TestMatchedNtoNIsLocal(t *testing.T) {
	src := Block(100, []int{0, 1, 2, 3})
	dst := Block(100, []int{0, 1, 2, 3})
	plan, err := NewPlan(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	if !plan.Matched() {
		t.Error("matched maps not detected")
	}
	if plan.Messages() != 0 {
		t.Errorf("matched plan sends %d messages", plan.Messages())
	}
	checkIdentity(t, runTransfer(t, 4, plan, false))
}

func TestBlockToCyclicRedistribution(t *testing.T) {
	src := Block(37, []int{0, 1, 2})
	dst := Cyclic(37, 5, []int{3, 4})
	plan, err := NewPlan(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Matched() {
		t.Error("distinct maps reported matched")
	}
	checkIdentity(t, runTransfer(t, 5, plan, false))
}

func TestBlockMtoNOverlappingRanks(t *testing.T) {
	// Source on ranks {0,1,2,3}, destination on {2,3,4,5}: partial overlap
	// exercises both local copies and messages.
	src := Block(64, []int{0, 1, 2, 3})
	dst := Block(64, []int{2, 3, 4, 5})
	plan, err := NewPlan(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	checkIdentity(t, runTransfer(t, 6, plan, false))
}

func TestSerialToParallelIsScatter(t *testing.T) {
	// 1 -> N: broadcast/scatter semantics (§6.3).
	src := Serial(50, 0)
	dst := Block(50, []int{0, 1, 2, 3})
	plan, err := NewPlan(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Messages() != 3 { // rank 0 keeps its own block locally
		t.Errorf("scatter messages = %d, want 3", plan.Messages())
	}
	checkIdentity(t, runTransfer(t, 4, plan, false))
}

func TestParallelToSerialIsGather(t *testing.T) {
	src := Block(50, []int{1, 2, 3})
	dst := Serial(50, 0)
	plan, err := NewPlan(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Messages() != 3 {
		t.Errorf("gather messages = %d, want 3", plan.Messages())
	}
	checkIdentity(t, runTransfer(t, 4, plan, false))
}

func TestCyclicToBlockDifferentCounts(t *testing.T) {
	src := Cyclic(101, 3, []int{0, 1, 2, 3, 4})
	dst := Block(101, []int{5, 6})
	plan, err := NewPlan(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	checkIdentity(t, runTransfer(t, 7, plan, false))
}

func TestForcedTransferMatchesFastPath(t *testing.T) {
	src := Block(40, []int{0, 1})
	dst := Block(40, []int{0, 1})
	plan, err := NewPlan(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	checkIdentity(t, runTransfer(t, 2, plan, true))
}

func TestCardinalityMismatchRejected(t *testing.T) {
	_, err := NewPlan(Block(10, []int{0}), Block(11, []int{1}))
	if !errors.Is(err, ErrMismatch) {
		t.Errorf("err = %v", err)
	}
}

func TestSideValidation(t *testing.T) {
	if _, err := NewPlan(Side{}, Block(4, []int{0})); !errors.Is(err, ErrMismatch) {
		t.Errorf("nil map err = %v", err)
	}
	bad := Side{Map: array.NewBlockMap(10, 2), WorldRanks: []int{0}}
	if _, err := NewPlan(bad, Block(10, []int{1})); !errors.Is(err, ErrMismatch) {
		t.Errorf("rank count err = %v", err)
	}
	dup := Side{Map: array.NewBlockMap(10, 2), WorldRanks: []int{3, 3}}
	if _, err := NewPlan(dup, Block(10, []int{0})); !errors.Is(err, ErrMismatch) {
		t.Errorf("dup rank err = %v", err)
	}
	neg := Side{Map: array.NewBlockMap(10, 1), WorldRanks: []int{-2}}
	if _, err := NewPlan(neg, Block(10, []int{0})); !errors.Is(err, ErrMismatch) {
		t.Errorf("neg rank err = %v", err)
	}
}

func TestTransferBufferChecks(t *testing.T) {
	plan, err := NewPlan(Block(10, []int{0}), Block(10, []int{1}))
	if err != nil {
		t.Fatal(err)
	}
	mpi.Run(2, func(c *mpi.Comm) {
		if c.Rank() == 0 {
			// Wrong source length.
			if err := plan.Transfer(c, make([]float64, 3), nil); !errors.Is(err, ErrBuffer) {
				t.Errorf("err = %v", err)
			}
			// Correct retry so rank 1 is not stranded.
			if err := plan.Transfer(c, make([]float64, 10), nil); err != nil {
				t.Errorf("retry: %v", err)
			}
		} else {
			out := make([]float64, 10)
			if err := plan.Transfer(c, nil, out); err != nil {
				t.Errorf("recv: %v", err)
			}
		}
	})
}

func TestEmptyGlobal(t *testing.T) {
	plan, err := NewPlan(Block(0, []int{0}), Block(0, []int{1}))
	if err != nil {
		t.Fatal(err)
	}
	mpi.Run(2, func(c *mpi.Comm) {
		if err := plan.Transfer(c, nil, nil); err != nil {
			t.Errorf("rank %d: %v", c.Rank(), err)
		}
	})
}

// provider implements DistArrayPort for the port-level test.
type provider struct {
	side Side
	data []float64
}

func (p *provider) Side() Side           { return p.side }
func (p *provider) LocalData() []float64 { return p.data }

func TestPortConnectAndPull(t *testing.T) {
	const n = 24
	src := Block(n, []int{0, 1})
	info := Info("field", src)
	if info.Type != PortType || info.Property("collective") != "true" {
		t.Errorf("info = %+v", info)
	}

	got := make([]float64, n)
	mpi.Run(3, func(c *mpi.Comm) {
		me := c.Rank()
		var prov *provider
		if me < 2 {
			lo, hi := mpi.BlockRange(n, 2, me)
			data := make([]float64, hi-lo)
			for i := range data {
				data[i] = float64(lo + i)
			}
			prov = &provider{side: src, data: data}
		} else {
			prov = &provider{side: src} // consumer's view of the port (side metadata only)
		}
		conn, err := Connect(prov, Serial(n, 2))
		if err != nil {
			t.Errorf("connect: %v", err)
			return
		}
		var out []float64
		if me == 2 {
			out = make([]float64, n)
		}
		if err := conn.Pull(c, out); err != nil {
			t.Errorf("rank %d pull: %v", me, err)
			return
		}
		if me == 2 {
			copy(got, out)
		}
	})
	checkIdentity(t, got)
}

// Property: redistribution between random block/cyclic sides is always the
// identity permutation on the global vector.
func TestRedistributionIdentityProperty(t *testing.T) {
	f := func(nRaw, mRaw, pRaw, bRaw uint8) bool {
		n := int(nRaw)%80 + 1
		m := int(mRaw)%3 + 1
		p2 := int(pRaw)%3 + 1
		b := int(bRaw)%4 + 1
		srcRanks := make([]int, m)
		for i := range srcRanks {
			srcRanks[i] = i
		}
		dstRanks := make([]int, p2)
		for i := range dstRanks {
			dstRanks[i] = m + i
		}
		plan, err := NewPlan(Block(n, srcRanks), Cyclic(n, b, dstRanks))
		if err != nil {
			return false
		}
		got := runTransfer(t, m+p2, plan, false)
		for i, v := range got {
			if v != float64(i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
