package collective

import (
	"fmt"
	"sort"

	"repro/internal/par"
	"repro/internal/simd"
)

// This file is the scheduler's cross-process face: the accessors and
// byte-oriented pack/unpack the distributed collective port
// (repro/internal/dist/collective) needs to stream a Plan's pair messages
// as chunked bulk frames over the ORB. Everything here derives from the
// same pairSched offsets NewPlan computes, so two processes that exchange
// Side descriptors and build the same Plan agree exactly on every chunk's
// packed layout.

// Rebased returns the side with its cohort placed on consecutive world
// ranks base, base+1, …, base+P−1. Cross-process connections use it to put
// both sides into one synthetic world — provider cohort at 0..M−1,
// consumer cohort at M..M+N−1 — because each process's own world ranks are
// process-local and meaningless across the wire, and colliding ranks would
// turn genuine transfers into bogus rank-local copies.
func (s Side) Rebased(base int) Side {
	p := 0
	if s.Map != nil {
		p = s.Map.Ranks()
	}
	w := make([]int, p)
	for i := range w {
		w[i] = base + i
	}
	return Side{Map: s.Map, WorldRanks: w}
}

// RecvFrom returns the source world ranks the given destination world rank
// receives a message from (sorted; rank-local copies excluded).
func (p *Plan) RecvFrom(dstWorld int) []int {
	return append([]int(nil), p.recvFrom[dstWorld]...)
}

// PairStream is the packed message of one (source, destination) world-rank
// pair, addressable by element range so it can cross the wire in chunks.
// Element k of the stream is the k-th element of the buffer pairSched.pack
// would build; PackRangeBytes and UnpackBytes move any [lo,hi) window of
// that stream without materializing the whole message.
type PairStream struct {
	ps *pairSched
}

// Pair returns the stream for one (src, dst) world-rank pair, or ok=false
// when the plan moves no data between them.
func (p *Plan) Pair(srcWorld, dstWorld int) (PairStream, bool) {
	ps := p.runsByPair[[2]int{srcWorld, dstWorld}]
	if ps == nil {
		return PairStream{}, false
	}
	return PairStream{ps: ps}, true
}

// Total returns the stream's element count.
func (s PairStream) Total() int { return s.ps.total }

// runsOverlapping returns the run index window [i0,i1) intersecting packed
// elements [lo,hi).
func (ps *pairSched) runsOverlapping(lo, hi int) (int, int) {
	i0 := sort.Search(len(ps.offs), func(i int) bool { return ps.offs[i]+ps.runs[i].n > lo })
	i1 := sort.Search(len(ps.offs), func(i int) bool { return ps.offs[i] >= hi })
	return i0, i1
}

// forRunsWindow executes body over run indices [i0,i1), in parallel when
// the window's element count justifies it (same policy as forRuns).
func (ps *pairSched) forRunsWindow(i0, i1, elems int, body func(i int)) {
	if elems < packGrain || i1-i0 <= 1 {
		for i := i0; i < i1; i++ {
			body(i)
		}
		return
	}
	grain := (i1 - i0) * packGrain / elems
	if grain < 1 {
		grain = 1
	}
	par.For(i1-i0, grain, func(lo, hi int) {
		for i := i0 + lo; i < i0+hi; i++ {
			body(i)
		}
	})
}

// PackRangeBytes gathers elements [lo,hi) of the packed stream from local
// storage directly into dst as little-endian float64 bytes; len(dst) must
// be 8·(hi−lo). The provider-side chunk servant points dst at the reply
// encoder's payload span (orb.Encoder.Float64SliceSpan), so packing and
// marshaling are one copy. Fans out over the worker pool above packGrain.
func (s PairStream) PackRangeBytes(local []float64, lo, hi int, dst []byte) error {
	if lo < 0 || hi < lo || hi > s.ps.total {
		return fmt.Errorf("%w: chunk [%d,%d) of %d-element stream", ErrBuffer, lo, hi, s.ps.total)
	}
	if len(dst) != 8*(hi-lo) {
		return fmt.Errorf("%w: %dB destination for %d elements", ErrBuffer, len(dst), hi-lo)
	}
	ps := s.ps
	i0, i1 := ps.runsOverlapping(lo, hi)
	ps.forRunsWindow(i0, i1, hi-lo, func(i int) {
		r := ps.runs[i]
		pLo, pHi := ps.offs[i], ps.offs[i]+r.n
		if pLo < lo {
			pLo = lo
		}
		if pHi > hi {
			pHi = hi
		}
		n := pHi - pLo
		if n <= 0 {
			return
		}
		src := local[r.srcLocal+(pLo-ps.offs[i]):]
		out := dst[8*(pLo-lo):]
		simd.PackF64LE(out[:8*n], src[:n])
	})
	return nil
}

// UnpackBytes scatters raw — little-endian float64 bytes holding elements
// [lo, lo+len(raw)/8) of the packed stream — into destination storage.
// The consumer side points raw at the undecoded reply payload
// (orb.Decoder.RawFloat64s), so unmarshaling and unpacking are one copy.
func (s PairStream) UnpackBytes(raw []byte, lo int, out []float64) error {
	if len(raw)%8 != 0 {
		return fmt.Errorf("%w: %dB payload is not a float64 array", ErrBuffer, len(raw))
	}
	hi := lo + len(raw)/8
	if lo < 0 || hi > s.ps.total {
		return fmt.Errorf("%w: chunk [%d,%d) of %d-element stream", ErrBuffer, lo, hi, s.ps.total)
	}
	ps := s.ps
	i0, i1 := ps.runsOverlapping(lo, hi)
	ps.forRunsWindow(i0, i1, hi-lo, func(i int) {
		r := ps.runs[i]
		pLo, pHi := ps.offs[i], ps.offs[i]+r.n
		if pLo < lo {
			pLo = lo
		}
		if pHi > hi {
			pHi = hi
		}
		n := pHi - pLo
		if n <= 0 {
			return
		}
		dst := out[r.dstLocal+(pLo-ps.offs[i]):]
		src := raw[8*(pLo-lo):]
		simd.UnpackF64LE(dst[:n], src[:8*n])
	})
	return nil
}
