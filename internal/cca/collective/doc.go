// Package collective implements CCA Collective Ports (§6.3 of the paper):
// "a small but powerful extension of the basic CCA Ports model to handle
// interactions among parallel components and thereby to free programmers
// from focusing on the often intricate implementation-level details of
// parallel computations."
//
// A collective connection joins two parallel components — M source ranks
// and N destination ranks, each side describing its data layout with an
// array.DataMap ("the creation of a collective port requires that the
// programmer specify the mapping of data"). The connection planner
// intersects the two distributions into a message schedule:
//
//   - N→N with matching maps: no redistribution — each rank's transfer is
//     a local copy ("in the most common case the mappings of the input and
//     output ports match each other ... data would not need redistribution
//     between the parallel components");
//   - 1→N and N→1 (a serial component against a parallel one): the
//     schedule degenerates to scatter/gather — "the semantics of this
//     interaction are very similar to broadcast, gather, and scatter";
//   - arbitrary M→N: full redistribution — "collective ports are defined
//     generally enough to allow data to be distributed arbitrarily in the
//     connected components", the case Figure 1 needs to attach a
//     differently distributed visualization tool.
//
// The same Plan serves two movers. In one address space the Transfer
// mover executes the schedule over mpi point-to-point messages —
// experiment E4 (cmd/bench -run e4, examples/collective) measures it,
// including the matched-map fast path the paper predicts. Across
// processes, the PairStream face (stream.go) exposes each (source,
// destination) pair's packed message as a byte-addressable stream so
// repro/internal/dist/collective can carry the redistribution over the
// ORB in chunks — experiment E11 (cmd/bench -run e11,
// examples/distviz) measures that path; DESIGN.md §9 documents the
// protocol.
package collective
