package collective

import (
	"fmt"

	"repro/internal/cca"
	"repro/internal/mpi"
)

// DistArrayPort is the collective provides-port interface of a parallel
// component publishing a distributed array: the port every cohort rank
// exposes, per §6.3's requirement that "the provides/uses port interfaces
// and other port information are accessible from every thread or process in
// a parallel component."
//
// Its SIDL declaration (see internal/esi/ports.sidl) is:
//
//	interface DistArray {
//	    int globalLength();
//	    void describe(out array<int,1> worldRanks);
//	    void localData(out array<double,1> chunk);
//	}
type DistArrayPort interface {
	// Side reports the distribution and world-rank placement of the data.
	Side() Side
	// LocalData returns the calling rank's chunk (owned storage; callers
	// must not retain it across timesteps).
	LocalData() []float64
}

// SnapshotPort is an optional extension of DistArrayPort for providers
// that can hand out a chunk the caller may retain as an immutable epoch
// snapshot: storage the port guarantees it will never mutate in place
// (static data, or a copy it made under its own lock). The distributed
// publisher (repro/internal/dist/collective) asks for this before falling
// back to copying LocalData, saving one full pass over the data per epoch
// on ports that already snapshot internally.
type SnapshotPort interface {
	DistArrayPort
	// Snapshot returns the calling rank's chunk as retain-forever storage.
	Snapshot() []float64
}

// PortType is the SIDL type name of DistArrayPort registrations.
const PortType = "cca.ports.DistArray"

// PullPort is the consumer-facing face of a distributed collective
// connection: the provides port a proxy component exposes after attaching
// to a remote cohort's published DistArray (Figure 1's visualization tool
// in a separate OS process). Rank arguments are consumer cohort ranks.
type PullPort interface {
	// GlobalLen returns the connection's global element count.
	GlobalLen() int
	// Ranks returns the consumer cohort size N.
	Ranks() int
	// LocalLen returns consumer rank's destination chunk length.
	LocalLen(rank int) int
	// Pull redistributes the provider's current data into out, which must
	// have length LocalLen(rank).
	Pull(rank int, out []float64) error
}

// PullPortType is the SIDL type name of PullPort registrations.
const PullPortType = "cca.ports.DistArrayPull"

// Info builds the PortInfo for a collective port registration, recording
// the data map in the port properties as the paper's port-information
// consistency requirement suggests.
func Info(name string, side Side) cca.PortInfo {
	mapDesc := "unbound"
	if side.Map != nil {
		mapDesc = side.Map.String()
	}
	return cca.PortInfo{
		Name: name,
		Type: PortType,
		Properties: map[string]string{
			"collective": "true",
			"map":        mapDesc,
		},
	}
}

// Connection is a live collective connection between a providing
// DistArrayPort (source) and a consuming side (destination).
type Connection struct {
	Plan *Plan
	src  DistArrayPort
}

// Connect plans a collective connection from the provider's published side
// to the consumer's declared side.
func Connect(provider DistArrayPort, consumer Side) (*Connection, error) {
	plan, err := NewPlan(provider.Side(), consumer)
	if err != nil {
		return nil, fmt.Errorf("collective connect: %w", err)
	}
	return &Connection{Plan: plan, src: provider}, nil
}

// Pull moves the provider's current data into out (the calling rank's
// destination chunk). Every world rank in either side must call Pull.
func (c *Connection) Pull(comm *mpi.Comm, out []float64) error {
	var local []float64
	if c.Plan.SrcLocalLen(comm.Rank()) > 0 {
		local = c.src.LocalData()
	}
	return c.Plan.Transfer(comm, local, out)
}
