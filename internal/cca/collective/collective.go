package collective

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/array"
	"repro/internal/mpi"
	"repro/internal/par"
)

// Errors reported by collective connections.
var (
	ErrMismatch = errors.New("collective: sides are incompatible")
	ErrNotMine  = errors.New("collective: rank does not participate")
	ErrBuffer   = errors.New("collective: buffer length mismatch")
)

// transferTag is the user tag carrying collective-port payloads.
const transferTag = 7100

// Side is one endpoint of a collective connection: the data distribution of
// a parallel component plus the world rank hosting each of its cohort
// ranks.
type Side struct {
	// Map describes how the global index space is distributed over the
	// component's cohort.
	Map array.DataMap
	// WorldRanks maps cohort rank i to its world (communicator) rank.
	WorldRanks []int
}

// Serial builds the Side of a serial component: all data on one world rank.
func Serial(n, worldRank int) Side {
	return Side{Map: array.NewSerialMap(n), WorldRanks: []int{worldRank}}
}

// Block builds a block-distributed Side over the given world ranks.
func Block(n int, worldRanks []int) Side {
	return Side{Map: array.NewBlockMap(n, len(worldRanks)), WorldRanks: append([]int(nil), worldRanks...)}
}

// Cyclic builds a block-cyclic Side over the given world ranks.
func Cyclic(n, blockSize int, worldRanks []int) Side {
	return Side{Map: array.NewCyclicMap(n, len(worldRanks), blockSize), WorldRanks: append([]int(nil), worldRanks...)}
}

func (s Side) validate() error {
	if s.Map == nil {
		return fmt.Errorf("%w: nil data map", ErrMismatch)
	}
	if err := array.Validate(s.Map); err != nil {
		return err
	}
	if len(s.WorldRanks) != s.Map.Ranks() {
		return fmt.Errorf("%w: map has %d ranks but %d world ranks given", ErrMismatch, s.Map.Ranks(), len(s.WorldRanks))
	}
	seen := map[int]bool{}
	for _, w := range s.WorldRanks {
		if w < 0 {
			return fmt.Errorf("%w: negative world rank %d", ErrMismatch, w)
		}
		if seen[w] {
			return fmt.Errorf("%w: world rank %d appears twice in one side", ErrMismatch, w)
		}
		seen[w] = true
	}
	return nil
}

// run is one contiguous piece of the redistribution schedule.
type run struct {
	srcWorld, dstWorld int
	srcLocal, dstLocal int
	n                  int
}

// packGrain is the element-count threshold below which pack/unpack stays
// serial; larger transfers copy runs in parallel on the shared worker pool.
const packGrain = 8192

// pairSched is the precomputed schedule for one (source, destination) world
// rank pair: its runs, each run's offset into the packed message, and the
// message's total element count. Computing offsets at plan time keeps the
// per-Transfer work to pure copies, which parallelize cleanly.
type pairSched struct {
	runs  []run
	offs  []int
	total int
}

// forRuns executes body over the schedule's run indices, in parallel when
// the total element count justifies it. Runs are disjoint, so chunking by
// run index is safe.
func (ps *pairSched) forRuns(body func(i int)) {
	if ps.total < packGrain || len(ps.runs) == 1 {
		for i := range ps.runs {
			body(i)
		}
		return
	}
	// Grain in run counts, sized so one chunk moves ~packGrain elements.
	grain := len(ps.runs) * packGrain / ps.total
	if grain < 1 {
		grain = 1
	}
	par.For(len(ps.runs), grain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			body(i)
		}
	})
}

// pack gathers this pair's runs from local storage into one message buffer.
func (ps *pairSched) pack(local []float64) []float64 {
	buf := make([]float64, ps.total)
	ps.forRuns(func(i int) {
		r := ps.runs[i]
		copy(buf[ps.offs[i]:ps.offs[i]+r.n], local[r.srcLocal:r.srcLocal+r.n])
	})
	return buf
}

// unpack scatters a received message into destination storage.
func (ps *pairSched) unpack(buf, out []float64) error {
	if len(buf) != ps.total {
		return fmt.Errorf("%w: message has %d elements, schedule wants %d", ErrBuffer, len(buf), ps.total)
	}
	ps.forRuns(func(i int) {
		r := ps.runs[i]
		copy(out[r.dstLocal:r.dstLocal+r.n], buf[ps.offs[i]:ps.offs[i]+r.n])
	})
	return nil
}

// copyLocal performs the rank-local runs directly from local to out.
func (ps *pairSched) copyLocal(local, out []float64) {
	ps.forRuns(func(i int) {
		r := ps.runs[i]
		copy(out[r.dstLocal:r.dstLocal+r.n], local[r.srcLocal:r.srcLocal+r.n])
	})
}

// Plan is the precomputed message schedule of one collective connection.
// Plans are immutable and safe for concurrent Transfer calls on disjoint
// communicators.
type Plan struct {
	src, dst Side
	runs     []run
	// matched marks the §6.3 fast path: both sides have identical maps and
	// co-located ranks, so every run is rank-local.
	matched bool
	// sendTo[w] lists the destination world ranks w transmits to (sorted);
	// recvFrom[w] the source world ranks w receives from.
	sendTo   map[int][]int
	recvFrom map[int][]int
	// runsByPair[(s,d)] is the packed-message schedule for one rank pair,
	// with per-run offsets precomputed at plan time.
	runsByPair map[[2]int]*pairSched
}

// NewPlan validates both sides and computes the redistribution schedule.
func NewPlan(src, dst Side) (*Plan, error) {
	if err := src.validate(); err != nil {
		return nil, err
	}
	if err := dst.validate(); err != nil {
		return nil, err
	}
	if src.Map.GlobalLen() != dst.Map.GlobalLen() {
		return nil, fmt.Errorf("%w: source has %d elements, destination %d (cardinality mismatch)",
			ErrMismatch, src.Map.GlobalLen(), dst.Map.GlobalLen())
	}
	p := &Plan{src: src, dst: dst,
		sendTo: map[int][]int{}, recvFrom: map[int][]int{}, runsByPair: map[[2]int]*pairSched{}}

	// Merge-intersect the two run lists over the global index space.
	sruns, druns := src.Map.Runs(), dst.Map.Runs()
	i, j := 0, 0
	for i < len(sruns) && j < len(druns) {
		sr, dr := sruns[i], druns[j]
		ov := sr.Global.Intersect(dr.Global)
		if ov.Len() > 0 {
			r := run{
				srcWorld: src.WorldRanks[sr.Rank],
				dstWorld: dst.WorldRanks[dr.Rank],
				srcLocal: sr.Local + (ov.Lo - sr.Global.Lo),
				dstLocal: dr.Local + (ov.Lo - dr.Global.Lo),
				n:        ov.Len(),
			}
			p.runs = append(p.runs, r)
		}
		if sr.Global.Hi <= dr.Global.Hi {
			i++
		}
		if dr.Global.Hi <= sr.Global.Hi {
			j++
		}
	}

	p.matched = true
	for _, r := range p.runs {
		if r.srcWorld != r.dstWorld {
			p.matched = false
		}
		key := [2]int{r.srcWorld, r.dstWorld}
		ps := p.runsByPair[key]
		if ps == nil {
			ps = &pairSched{}
			p.runsByPair[key] = ps
		}
		ps.runs = append(ps.runs, r)
		ps.offs = append(ps.offs, ps.total)
		ps.total += r.n
	}
	pairSeen := map[[2]int]bool{}
	for key := range p.runsByPair {
		if key[0] == key[1] || pairSeen[key] {
			continue
		}
		pairSeen[key] = true
		p.sendTo[key[0]] = append(p.sendTo[key[0]], key[1])
		p.recvFrom[key[1]] = append(p.recvFrom[key[1]], key[0])
	}
	for _, m := range []map[int][]int{p.sendTo, p.recvFrom} {
		for k := range m {
			sort.Ints(m[k])
		}
	}
	return p, nil
}

// Matched reports whether the connection hits the no-redistribution fast
// path (identical maps on co-located ranks).
func (p *Plan) Matched() bool { return p.matched }

// Messages reports the number of distinct inter-rank messages one Transfer
// sends (0 on the matched fast path).
func (p *Plan) Messages() int {
	n := 0
	for key := range p.runsByPair {
		if key[0] != key[1] {
			n++
		}
	}
	return n
}

// GlobalLen returns the connection's global element count.
func (p *Plan) GlobalLen() int { return p.src.Map.GlobalLen() }

// SrcLocalLen returns the source-side chunk length expected from the given
// world rank, or 0 if the rank is not in the source side.
func (p *Plan) SrcLocalLen(worldRank int) int {
	for i, w := range p.src.WorldRanks {
		if w == worldRank {
			return p.src.Map.LocalLen(i)
		}
	}
	return 0
}

// DstLocalLen returns the destination-side chunk length owned by the given
// world rank, or 0 if the rank is not in the destination side.
func (p *Plan) DstLocalLen(worldRank int) int {
	for i, w := range p.dst.WorldRanks {
		if w == worldRank {
			return p.dst.Map.LocalLen(i)
		}
	}
	return 0
}

// Transfer executes the schedule from the calling rank's perspective: it
// packs and sends this rank's outgoing runs, performs rank-local copies
// directly, and receives and unpacks incoming runs into out.
//
// local must have length SrcLocalLen(rank) (nil when 0); out must have
// length DstLocalLen(rank) (nil when 0). Every participating world rank
// must call Transfer on the same communicator; ranks in neither side need
// not call at all.
func (p *Plan) Transfer(comm *mpi.Comm, local, out []float64) error {
	me := comm.Rank()
	if want := p.SrcLocalLen(me); len(local) != want {
		return fmt.Errorf("%w: rank %d source chunk %d, want %d", ErrBuffer, me, len(local), want)
	}
	if want := p.DstLocalLen(me); len(out) != want {
		return fmt.Errorf("%w: rank %d destination buffer %d, want %d", ErrBuffer, me, len(out), want)
	}

	// Rank-local runs: straight copies (the §6.2-style zero-cost path),
	// chunked over the worker pool when the volume justifies it.
	if ps := p.runsByPair[[2]int{me, me}]; ps != nil {
		ps.copyLocal(local, out)
	}
	// Pack and send one message per destination.
	for _, d := range p.sendTo[me] {
		ps := p.runsByPair[[2]int{me, d}]
		if err := comm.Send(d, transferTag, ps.pack(local)); err != nil {
			return err
		}
	}
	// Receive and unpack.
	for _, s := range p.recvFrom[me] {
		buf, _, err := comm.RecvFloat64(s, transferTag)
		if err != nil {
			return err
		}
		if err := p.runsByPair[[2]int{s, me}].unpack(buf, out); err != nil {
			return fmt.Errorf("rank %d from %d: %w", me, s, err)
		}
	}
	return nil
}

// TransferForced is Transfer with the matched-map fast path disabled: even
// rank-local runs round-trip through the mailbox. It exists for the E4
// ablation quantifying what the fast path is worth.
func (p *Plan) TransferForced(comm *mpi.Comm, local, out []float64) error {
	me := comm.Rank()
	if want := p.SrcLocalLen(me); len(local) != want {
		return fmt.Errorf("%w: rank %d source chunk %d, want %d", ErrBuffer, me, len(local), want)
	}
	if want := p.DstLocalLen(me); len(out) != want {
		return fmt.Errorf("%w: rank %d destination buffer %d, want %d", ErrBuffer, me, len(out), want)
	}
	// Self-runs become a real message.
	if ps := p.runsByPair[[2]int{me, me}]; ps != nil {
		if err := comm.Send(me, transferTag, ps.pack(local)); err != nil {
			return err
		}
	}
	for _, d := range p.sendTo[me] {
		ps := p.runsByPair[[2]int{me, d}]
		if err := comm.Send(d, transferTag, ps.pack(local)); err != nil {
			return err
		}
	}
	recvFrom := p.recvFrom[me]
	if p.runsByPair[[2]int{me, me}] != nil {
		recvFrom = append([]int{me}, recvFrom...)
	}
	for _, s := range recvFrom {
		buf, _, err := comm.RecvFloat64(s, transferTag)
		if err != nil {
			return err
		}
		if err := p.runsByPair[[2]int{s, me}].unpack(buf, out); err != nil {
			return fmt.Errorf("rank %d from %d: %w", me, s, err)
		}
	}
	return nil
}
