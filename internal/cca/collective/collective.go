// Package collective implements CCA Collective Ports (§6.3 of the paper):
// "a small but powerful extension of the basic CCA Ports model to handle
// interactions among parallel components and thereby to free programmers
// from focusing on the often intricate implementation-level details of
// parallel computations."
//
// A collective connection joins two parallel components — M source ranks
// and N destination ranks, each side describing its data layout with an
// array.DataMap ("the creation of a collective port requires that the
// programmer specify the mapping of data"). The connection planner
// intersects the two distributions into a message schedule:
//
//   - N→N with matching maps: no redistribution — each rank's transfer is
//     a local copy ("in the most common case the mappings of the input and
//     output ports match each other ... data would not need redistribution
//     between the parallel components");
//   - 1→N and N→1 (a serial component against a parallel one): the
//     schedule degenerates to scatter/gather — "the semantics of this
//     interaction are very similar to broadcast, gather, and scatter";
//   - arbitrary M→N: full redistribution — "collective ports are defined
//     generally enough to allow data to be distributed arbitrarily in the
//     connected components", the case Figure 1 needs to attach a
//     differently distributed visualization tool.
package collective

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/array"
	"repro/internal/mpi"
)

// Errors reported by collective connections.
var (
	ErrMismatch = errors.New("collective: sides are incompatible")
	ErrNotMine  = errors.New("collective: rank does not participate")
	ErrBuffer   = errors.New("collective: buffer length mismatch")
)

// transferTag is the user tag carrying collective-port payloads.
const transferTag = 7100

// Side is one endpoint of a collective connection: the data distribution of
// a parallel component plus the world rank hosting each of its cohort
// ranks.
type Side struct {
	// Map describes how the global index space is distributed over the
	// component's cohort.
	Map array.DataMap
	// WorldRanks maps cohort rank i to its world (communicator) rank.
	WorldRanks []int
}

// Serial builds the Side of a serial component: all data on one world rank.
func Serial(n, worldRank int) Side {
	return Side{Map: array.NewSerialMap(n), WorldRanks: []int{worldRank}}
}

// Block builds a block-distributed Side over the given world ranks.
func Block(n int, worldRanks []int) Side {
	return Side{Map: array.NewBlockMap(n, len(worldRanks)), WorldRanks: append([]int(nil), worldRanks...)}
}

// Cyclic builds a block-cyclic Side over the given world ranks.
func Cyclic(n, blockSize int, worldRanks []int) Side {
	return Side{Map: array.NewCyclicMap(n, len(worldRanks), blockSize), WorldRanks: append([]int(nil), worldRanks...)}
}

func (s Side) validate() error {
	if s.Map == nil {
		return fmt.Errorf("%w: nil data map", ErrMismatch)
	}
	if err := array.Validate(s.Map); err != nil {
		return err
	}
	if len(s.WorldRanks) != s.Map.Ranks() {
		return fmt.Errorf("%w: map has %d ranks but %d world ranks given", ErrMismatch, s.Map.Ranks(), len(s.WorldRanks))
	}
	seen := map[int]bool{}
	for _, w := range s.WorldRanks {
		if w < 0 {
			return fmt.Errorf("%w: negative world rank %d", ErrMismatch, w)
		}
		if seen[w] {
			return fmt.Errorf("%w: world rank %d appears twice in one side", ErrMismatch, w)
		}
		seen[w] = true
	}
	return nil
}

// run is one contiguous piece of the redistribution schedule.
type run struct {
	srcWorld, dstWorld int
	srcLocal, dstLocal int
	n                  int
}

// Plan is the precomputed message schedule of one collective connection.
// Plans are immutable and safe for concurrent Transfer calls on disjoint
// communicators.
type Plan struct {
	src, dst Side
	runs     []run
	// matched marks the §6.3 fast path: both sides have identical maps and
	// co-located ranks, so every run is rank-local.
	matched bool
	// sendTo[w] lists the destination world ranks w transmits to (sorted);
	// recvFrom[w] the source world ranks w receives from.
	sendTo   map[int][]int
	recvFrom map[int][]int
	// runsBySend[(s,d)] groups runs for one packed message.
	runsByPair map[[2]int][]run
}

// NewPlan validates both sides and computes the redistribution schedule.
func NewPlan(src, dst Side) (*Plan, error) {
	if err := src.validate(); err != nil {
		return nil, err
	}
	if err := dst.validate(); err != nil {
		return nil, err
	}
	if src.Map.GlobalLen() != dst.Map.GlobalLen() {
		return nil, fmt.Errorf("%w: source has %d elements, destination %d (cardinality mismatch)",
			ErrMismatch, src.Map.GlobalLen(), dst.Map.GlobalLen())
	}
	p := &Plan{src: src, dst: dst,
		sendTo: map[int][]int{}, recvFrom: map[int][]int{}, runsByPair: map[[2]int][]run{}}

	// Merge-intersect the two run lists over the global index space.
	sruns, druns := src.Map.Runs(), dst.Map.Runs()
	i, j := 0, 0
	for i < len(sruns) && j < len(druns) {
		sr, dr := sruns[i], druns[j]
		ov := sr.Global.Intersect(dr.Global)
		if ov.Len() > 0 {
			r := run{
				srcWorld: src.WorldRanks[sr.Rank],
				dstWorld: dst.WorldRanks[dr.Rank],
				srcLocal: sr.Local + (ov.Lo - sr.Global.Lo),
				dstLocal: dr.Local + (ov.Lo - dr.Global.Lo),
				n:        ov.Len(),
			}
			p.runs = append(p.runs, r)
		}
		if sr.Global.Hi <= dr.Global.Hi {
			i++
		}
		if dr.Global.Hi <= sr.Global.Hi {
			j++
		}
	}

	p.matched = true
	for _, r := range p.runs {
		if r.srcWorld != r.dstWorld {
			p.matched = false
		}
		key := [2]int{r.srcWorld, r.dstWorld}
		p.runsByPair[key] = append(p.runsByPair[key], r)
	}
	pairSeen := map[[2]int]bool{}
	for key := range p.runsByPair {
		if key[0] == key[1] || pairSeen[key] {
			continue
		}
		pairSeen[key] = true
		p.sendTo[key[0]] = append(p.sendTo[key[0]], key[1])
		p.recvFrom[key[1]] = append(p.recvFrom[key[1]], key[0])
	}
	for _, m := range []map[int][]int{p.sendTo, p.recvFrom} {
		for k := range m {
			sort.Ints(m[k])
		}
	}
	return p, nil
}

// Matched reports whether the connection hits the no-redistribution fast
// path (identical maps on co-located ranks).
func (p *Plan) Matched() bool { return p.matched }

// Messages reports the number of distinct inter-rank messages one Transfer
// sends (0 on the matched fast path).
func (p *Plan) Messages() int {
	n := 0
	for key := range p.runsByPair {
		if key[0] != key[1] {
			n++
		}
	}
	return n
}

// GlobalLen returns the connection's global element count.
func (p *Plan) GlobalLen() int { return p.src.Map.GlobalLen() }

// SrcLocalLen returns the source-side chunk length expected from the given
// world rank, or 0 if the rank is not in the source side.
func (p *Plan) SrcLocalLen(worldRank int) int {
	for i, w := range p.src.WorldRanks {
		if w == worldRank {
			return p.src.Map.LocalLen(i)
		}
	}
	return 0
}

// DstLocalLen returns the destination-side chunk length owned by the given
// world rank, or 0 if the rank is not in the destination side.
func (p *Plan) DstLocalLen(worldRank int) int {
	for i, w := range p.dst.WorldRanks {
		if w == worldRank {
			return p.dst.Map.LocalLen(i)
		}
	}
	return 0
}

// Transfer executes the schedule from the calling rank's perspective: it
// packs and sends this rank's outgoing runs, performs rank-local copies
// directly, and receives and unpacks incoming runs into out.
//
// local must have length SrcLocalLen(rank) (nil when 0); out must have
// length DstLocalLen(rank) (nil when 0). Every participating world rank
// must call Transfer on the same communicator; ranks in neither side need
// not call at all.
func (p *Plan) Transfer(comm *mpi.Comm, local, out []float64) error {
	me := comm.Rank()
	if want := p.SrcLocalLen(me); len(local) != want {
		return fmt.Errorf("%w: rank %d source chunk %d, want %d", ErrBuffer, me, len(local), want)
	}
	if want := p.DstLocalLen(me); len(out) != want {
		return fmt.Errorf("%w: rank %d destination buffer %d, want %d", ErrBuffer, me, len(out), want)
	}

	// Rank-local runs: straight copies (the §6.2-style zero-cost path).
	for _, r := range p.runsByPair[[2]int{me, me}] {
		copy(out[r.dstLocal:r.dstLocal+r.n], local[r.srcLocal:r.srcLocal+r.n])
	}
	// Pack and send one message per destination.
	for _, d := range p.sendTo[me] {
		runs := p.runsByPair[[2]int{me, d}]
		total := 0
		for _, r := range runs {
			total += r.n
		}
		buf := make([]float64, 0, total)
		for _, r := range runs {
			buf = append(buf, local[r.srcLocal:r.srcLocal+r.n]...)
		}
		if err := comm.Send(d, transferTag, buf); err != nil {
			return err
		}
	}
	// Receive and unpack.
	for _, s := range p.recvFrom[me] {
		buf, _, err := comm.RecvFloat64(s, transferTag)
		if err != nil {
			return err
		}
		off := 0
		for _, r := range p.runsByPair[[2]int{s, me}] {
			if off+r.n > len(buf) {
				return fmt.Errorf("%w: short message from rank %d", ErrBuffer, s)
			}
			copy(out[r.dstLocal:r.dstLocal+r.n], buf[off:off+r.n])
			off += r.n
		}
	}
	return nil
}

// TransferForced is Transfer with the matched-map fast path disabled: even
// rank-local runs round-trip through the mailbox. It exists for the E4
// ablation quantifying what the fast path is worth.
func (p *Plan) TransferForced(comm *mpi.Comm, local, out []float64) error {
	me := comm.Rank()
	if want := p.SrcLocalLen(me); len(local) != want {
		return fmt.Errorf("%w: rank %d source chunk %d, want %d", ErrBuffer, me, len(local), want)
	}
	if want := p.DstLocalLen(me); len(out) != want {
		return fmt.Errorf("%w: rank %d destination buffer %d, want %d", ErrBuffer, me, len(out), want)
	}
	// Self-runs become a real message.
	if runs := p.runsByPair[[2]int{me, me}]; len(runs) > 0 {
		total := 0
		for _, r := range runs {
			total += r.n
		}
		buf := make([]float64, 0, total)
		for _, r := range runs {
			buf = append(buf, local[r.srcLocal:r.srcLocal+r.n]...)
		}
		if err := comm.Send(me, transferTag, buf); err != nil {
			return err
		}
	}
	for _, d := range p.sendTo[me] {
		runs := p.runsByPair[[2]int{me, d}]
		total := 0
		for _, r := range runs {
			total += r.n
		}
		buf := make([]float64, 0, total)
		for _, r := range runs {
			buf = append(buf, local[r.srcLocal:r.srcLocal+r.n]...)
		}
		if err := comm.Send(d, transferTag, buf); err != nil {
			return err
		}
	}
	recvFrom := p.recvFrom[me]
	if len(p.runsByPair[[2]int{me, me}]) > 0 {
		recvFrom = append([]int{me}, recvFrom...)
	}
	for _, s := range recvFrom {
		buf, _, err := comm.RecvFloat64(s, transferTag)
		if err != nil {
			return err
		}
		off := 0
		for _, r := range p.runsByPair[[2]int{s, me}] {
			copy(out[r.dstLocal:r.dstLocal+r.n], buf[off:off+r.n])
			off += r.n
		}
	}
	return nil
}
