package cca

import (
	"fmt"
	"strings"
)

// Flavor encodes the paper's compliance "flavors" (§4): "the CCA standard
// will allow different flavors of compliance; each component will specify a
// minimum flavor of compliance required of a framework within which it can
// interact." A framework advertises the flavor set it implements; a
// component declares the flavors it requires; installation checks
// containment.
type Flavor uint32

// Compliance flavors.
const (
	// FlavorInProcess: same-address-space direct connections (§6.2).
	FlavorInProcess Flavor = 1 << iota
	// FlavorDistributed: connections through marshaling proxies to remote
	// components (§6.1 "connections through proxy intermediaries").
	FlavorDistributed
	// FlavorCollective: collective ports between parallel components
	// (§6.3).
	FlavorCollective
	// FlavorReflection: SIDL runtime reflection and dynamic method
	// invocation (§5).
	FlavorReflection
)

var flavorNames = []struct {
	f    Flavor
	name string
}{
	{FlavorInProcess, "in-process"},
	{FlavorDistributed, "distributed"},
	{FlavorCollective, "collective"},
	{FlavorReflection, "reflection"},
}

func (f Flavor) String() string {
	if f == 0 {
		return "none"
	}
	var parts []string
	for _, fn := range flavorNames {
		if f&fn.f != 0 {
			parts = append(parts, fn.name)
		}
	}
	return strings.Join(parts, "+")
}

// Contains reports whether f provides every flavor in req.
func (f Flavor) Contains(req Flavor) bool { return f&req == req }

// ParseFlavor parses a "+"-separated flavor list as produced by String.
func ParseFlavor(s string) (Flavor, error) {
	if s == "" || s == "none" {
		return 0, nil
	}
	var f Flavor
Parts:
	for _, p := range strings.Split(s, "+") {
		for _, fn := range flavorNames {
			if fn.name == p {
				f |= fn.f
				continue Parts
			}
		}
		return 0, fmt.Errorf("cca: unknown flavor %q", p)
	}
	return f, nil
}

// FlavorRequirer is optionally implemented by components that demand a
// minimum compliance flavor from their framework.
type FlavorRequirer interface {
	RequiredFlavor() Flavor
}
