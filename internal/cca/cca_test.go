package cca

import (
	"strings"
	"testing"
)

func TestPortInfoProperty(t *testing.T) {
	pi := PortInfo{Name: "p", Type: "t"}
	if pi.Property("x") != "" {
		t.Error("property on nil map")
	}
	pi2 := pi.WithProperty("collective", "true")
	if pi2.Property("collective") != "true" {
		t.Error("WithProperty lost value")
	}
	// Original must be untouched (value semantics).
	if pi.Property("collective") != "" {
		t.Error("WithProperty mutated receiver")
	}
	pi3 := pi2.WithProperty("map", "block")
	if pi3.Property("collective") != "true" || pi3.Property("map") != "block" {
		t.Errorf("properties = %+v", pi3.Properties)
	}
	if pi2.Property("map") != "" {
		t.Error("WithProperty shared map with ancestor")
	}
}

func TestConnectionIDString(t *testing.T) {
	id := ConnectionID{User: "u", UsesPort: "a", Provider: "p", ProvidesPort: "b"}
	if got := id.String(); got != "u.a -> p.b" {
		t.Errorf("String = %q", got)
	}
}

func TestEventKindStrings(t *testing.T) {
	cases := map[EventKind]string{
		EventComponentAdded:   "component-added",
		EventComponentRemoved: "component-removed",
		EventConnected:        "connected",
		EventDisconnected:     "disconnected",
		EventComponentFailed:  "component-failed",
		EventKind(99):         "event(99)",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(k), got, want)
		}
	}
}

func TestEventListenerFunc(t *testing.T) {
	var got Event
	l := EventListenerFunc(func(e Event) { got = e })
	l.OnEvent(Event{Kind: EventConnected, Component: "x"})
	if got.Kind != EventConnected || got.Component != "x" {
		t.Errorf("event = %+v", got)
	}
}

func TestFlavorStringAndContains(t *testing.T) {
	f := FlavorInProcess | FlavorCollective
	s := f.String()
	if !strings.Contains(s, "in-process") || !strings.Contains(s, "collective") {
		t.Errorf("String = %q", s)
	}
	if Flavor(0).String() != "none" {
		t.Errorf("zero = %q", Flavor(0).String())
	}
	if !f.Contains(FlavorInProcess) || f.Contains(FlavorDistributed) {
		t.Error("Contains wrong")
	}
	if !f.Contains(0) {
		t.Error("everything contains the empty set")
	}
}

func TestSortedNames(t *testing.T) {
	m := map[string]int{"c": 1, "a": 2, "b": 3}
	got := SortedNames(m)
	if len(got) != 3 || got[0] != "a" || got[2] != "c" {
		t.Errorf("SortedNames = %v", got)
	}
}
