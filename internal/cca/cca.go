// Package cca defines the core abstractions of the Common Component
// Architecture as specified in the HPDC'99 paper: components, provides/uses
// ports, the CCAServices handle through which all component↔framework
// interaction flows, and the connection events the configuration API
// (builders) observes.
//
// The paper's central design commitments, reproduced here:
//
//   - "Each component defines one or more ports... Communication links
//     between components are implemented by connecting compatible ports"
//     (§4). A Port in this implementation is any Go interface value; port
//     compatibility is Go interface satisfaction, checked at connect time
//     against the SIDL-declared type when one is registered.
//
//   - "A Provides port is an interface that a component provides to others.
//     A Uses port interface has methods that one component (the caller)
//     wants to call on another component (the callee); the caller component
//     retrieves the Uses interface from the CCA Services handle" (§6.1).
//
//   - "Provides ports are generalized listeners... Each Uses port maintains
//     a list of listeners... one call may correspond to zero or more
//     invocations on provider components" (§6.1). GetPort returns the
//     single connection (erroring on fan-out ambiguity); GetPorts returns
//     the full listener list for fan-out calls.
//
//   - "All interaction between the component and its containing framework
//     will occur through the component's CCAServices object, which is set
//     by the containing framework" (§6.1): Component.SetServices.
//
// The reference framework that implements Services lives in
// repro/internal/cca/framework; collective ports live in
// repro/internal/cca/collective.
package cca

import (
	"errors"
	"fmt"
	"io"
	"sort"
)

// Port is a communication endpoint. Any value may serve as a port; in
// practice a port is a value implementing the Go interface generated from
// (or corresponding to) its SIDL port type. The paper's direct-connect
// guarantee holds because a connected Port is handed to the using component
// as the very interface value the provider registered — a call through it
// is a plain Go dynamic dispatch.
type Port any

// PortInfo names and types a port registration.
type PortInfo struct {
	// Name is the component-local instance name of the port ("solver",
	// "viz", ...). GetPort and Connect address ports by this name.
	Name string
	// Type is the port's SIDL type name (e.g. "esi.SolverPort"). Two
	// ports are compatible when their types are compatible per the SIDL
	// type graph (or equal, when no SIDL registration exists).
	Type string
	// Properties carries implementation hints: the paper's compliance
	// "flavors", collective data maps, transport preferences, etc.
	Properties map[string]string
}

// Property returns a property value, or the empty string when absent.
func (pi PortInfo) Property(key string) string {
	if pi.Properties == nil {
		return ""
	}
	return pi.Properties[key]
}

// WithProperty returns a copy of pi with key set to value.
func (pi PortInfo) WithProperty(key, value string) PortInfo {
	props := make(map[string]string, len(pi.Properties)+1)
	for k, v := range pi.Properties {
		props[k] = v
	}
	props[key] = value
	pi.Properties = props
	return pi
}

// Component is the paper's independent unit of deployment. The containing
// framework calls SetServices exactly once, immediately after
// instantiation; the component registers its provides and uses ports there
// (Figure 3, step 1).
type Component interface {
	SetServices(svc Services) error
}

// ComponentRelease is optionally implemented by components that need
// teardown when removed from a framework.
type ComponentRelease interface {
	ReleaseServices() error
}

// Checkpointable is the optional port interface behind live hot-swap and
// crash restart: a component that implements it can externalize its state
// as an opaque byte stream and later reconstruct itself from one — in the
// same process (framework Swap), a different process, or after a
// kill-and-restart (orb RestartPolicy). Implementations conventionally
// write the repro/internal/ckpt wire format (versioned, length-prefixed,
// CRC-guarded named sections), which is what the corruption guarantees in
// that package's docs assume; the framework itself treats the stream as
// opaque bytes.
//
// Checkpoint must capture a consistent snapshot — callers quiesce the
// component's ports first, so no port call is in flight during either
// method. Restore must leave the component equivalent to the one that
// checkpointed: resuming a restored iterative solver converges to the same
// answer the uninterrupted run produces.
type Checkpointable interface {
	Checkpoint(w io.Writer) error
	Restore(r io.Reader) error
}

// Quiescer is the quiesce surface a Services handle exposes when its
// framework supports live component replacement (the reference framework
// does). Quiesce flips the named provides port's shared health cell to
// Degraded — so supervised callers observe the window through the ordinary
// event stream — then drains: it blocks until every outstanding GetPort
// acquisition of the port has been released. While quiesced, new GetPort
// calls shed with ErrPortQuiescing, a typed retryable error. Resume
// returns the port to Healthy and re-admits acquisitions.
type Quiescer interface {
	Quiesce(port string) error
	Resume(port string) error
}

// Errors reported by Services implementations and frameworks.
var (
	ErrPortExists       = errors.New("cca: port already registered")
	ErrPortUnknown      = errors.New("cca: no such port")
	ErrPortNotUses      = errors.New("cca: port is not a registered uses port")
	ErrNotConnected     = errors.New("cca: uses port is not connected")
	ErrMultiConnected   = errors.New("cca: uses port has multiple connections; use GetPorts")
	ErrTypeMismatch     = errors.New("cca: port types are incompatible")
	ErrNilPort          = errors.New("cca: nil port")
	ErrConnectionBroken = errors.New("cca: connection broken")
	// ErrPortQuiescing is the typed retryable error GetPort sheds while a
	// provides port is quiesced for checkpoint or swap: the provider is
	// healthy and will re-admit acquisitions when the window closes, so
	// callers should back off briefly and retry rather than fail.
	ErrPortQuiescing = errors.New("cca: port quiescing (retry shortly)")
)

// Health is the framework-tracked state of a connection to a (possibly
// remote) provides port. Direct in-process connections are always Healthy;
// distributed connections move through the state machine as their transport
// supervisor observes the peer: Healthy → Degraded on connection loss
// (reconnect in progress, calls may be retried), Degraded → Broken when the
// peer is judged truly down (circuit open — GetPort fails fast with
// ErrConnectionBroken instead of letting callers hang on a dead socket),
// and back to Healthy when a redial succeeds.
type Health int32

// Connection health states.
const (
	HealthHealthy Health = iota
	HealthDegraded
	HealthBroken
)

func (h Health) String() string {
	switch h {
	case HealthHealthy:
		return "healthy"
	case HealthDegraded:
		return "degraded"
	case HealthBroken:
		return "broken"
	default:
		return fmt.Sprintf("health(%d)", int32(h))
	}
}

// Services is the CCAServices handle (§4, §6.1): the minimal framework
// service set the paper identifies — "creation of CCA Ports and access to
// CCA Ports, which in turn enable connections between components."
type Services interface {
	// AddProvidesPort publishes a port this component implements
	// (Figure 3 step 2: addProvidesPort).
	AddProvidesPort(port Port, info PortInfo) error
	// RemoveProvidesPort withdraws a published port.
	RemoveProvidesPort(name string) error
	// RegisterUsesPort declares a port this component intends to call.
	RegisterUsesPort(info PortInfo) error
	// UnregisterUsesPort withdraws a uses declaration.
	UnregisterUsesPort(name string) error
	// GetPort retrieves the provider connected to the named uses port
	// (Figure 3 step 4: getPort). It errors when unconnected, and when
	// more than one provider is connected (fan-out callers use GetPorts).
	GetPort(name string) (Port, error)
	// GetPorts retrieves every provider connected to the named uses port,
	// in connection order — the paper's listener list. An unconnected
	// uses port yields an empty slice ("zero or more invocations").
	GetPorts(name string) ([]Port, error)
	// ReleasePort tells the framework the component is done with the
	// port instance obtained from GetPort.
	ReleasePort(name string) error
	// ProvidesPortNames lists this component's published ports, sorted.
	ProvidesPortNames() []string
	// UsesPortNames lists this component's declared uses ports, sorted.
	UsesPortNames() []string
	// PortInfo reports the registration info of a local port by name.
	PortInfo(name string) (PortInfo, bool)
	// ComponentName reports the instance name the framework assigned.
	ComponentName() string
}

// ConnectionID identifies a connection for the configuration API.
type ConnectionID struct {
	User         string // using component instance name
	UsesPort     string
	Provider     string // providing component instance name
	ProvidesPort string
}

func (c ConnectionID) String() string {
	return fmt.Sprintf("%s.%s -> %s.%s", c.User, c.UsesPort, c.Provider, c.ProvidesPort)
}

// EventKind enumerates configuration-API events (§4: "notifying components
// that they have been added to a scenario and deleted from it, redirecting
// interactions between components, or notifying a builder of a component
// failure").
type EventKind int

// Configuration event kinds.
const (
	EventComponentAdded EventKind = iota
	EventComponentRemoved
	EventConnected
	EventDisconnected
	EventComponentFailed
	// Connection-health transitions (§6.2 framework interposition): emitted
	// by the framework when a supervised distributed connection changes
	// health state. Degraded means the transport is down and a reconnect is
	// in progress; Broken means the circuit breaker judged the peer dead
	// (GetPort fails fast); Restored means a redial succeeded from either
	// non-healthy state.
	EventConnectionDegraded
	EventConnectionRestored
	EventConnectionBroken
	// EventComponentSwapped reports a live hot-swap: the named instance was
	// replaced by a new component (possibly carrying checkpointed state)
	// with its connections re-wired in place.
	EventComponentSwapped
)

func (k EventKind) String() string {
	switch k {
	case EventComponentAdded:
		return "component-added"
	case EventComponentRemoved:
		return "component-removed"
	case EventConnected:
		return "connected"
	case EventDisconnected:
		return "disconnected"
	case EventComponentFailed:
		return "component-failed"
	case EventConnectionDegraded:
		return "connection-degraded"
	case EventConnectionRestored:
		return "connection-restored"
	case EventConnectionBroken:
		return "connection-broken"
	case EventComponentSwapped:
		return "component-swapped"
	default:
		return fmt.Sprintf("event(%d)", int(k))
	}
}

// Event is a configuration-API notification.
type Event struct {
	Kind       EventKind
	Component  string
	Connection ConnectionID
	Err        error
}

// EventListener receives configuration events. Builders (cmd/ccafe) and
// monitoring components register listeners with the framework.
type EventListener interface {
	OnEvent(e Event)
}

// EventListenerFunc adapts a function to EventListener.
type EventListenerFunc func(e Event)

// OnEvent implements EventListener.
func (f EventListenerFunc) OnEvent(e Event) { f(e) }

// SortedNames returns map keys sorted — shared helper for deterministic
// listings across Services implementations.
func SortedNames[M ~map[string]V, V any](m M) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
