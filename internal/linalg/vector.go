// Package linalg provides the sparse linear-algebra substrate that the CCA
// paper's motivating application depends on: the "solution of discretized
// linear systems Ax = b ... which are very large and have sparse coefficient
// matrices" (§2.2). It supplies CSR sparse matrices, Krylov solvers (CG,
// GMRES(m), BiCGStab), and preconditioners (Jacobi, SOR, ILU(0)) behind
// small interfaces so the ESI-style solver components (internal/esi) can
// expose them as interchangeable CCA components.
//
// Solvers are written against an Operator and a Dot function rather than a
// concrete matrix, so the same code runs serially and inside an SPMD
// parallel component (where Apply performs halo exchange and Dot performs a
// global reduction over internal/mpi).
package linalg

import (
	"errors"
	"fmt"
	"math"
)

// Errors reported by solvers and matrix constructors.
var (
	ErrDim         = errors.New("linalg: dimension mismatch")
	ErrNonConverge = errors.New("linalg: solver did not converge")
	ErrBreakdown   = errors.New("linalg: solver breakdown")
	ErrSingular    = errors.New("linalg: singular pivot")
)

// Dot computes an inner product. In serial use, DotSerial suffices; a
// parallel component supplies a Dot that sums local products and reduces
// across its communicator.
type Dot func(a, b []float64) float64

// DotSerial is the plain serial inner product.
func DotSerial(a, b []float64) float64 {
	var s float64
	for i, v := range a {
		s += v * b[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of v under the given inner product.
func Norm2(dot Dot, v []float64) float64 { return math.Sqrt(dot(v, v)) }

// Axpy computes y += alpha*x.
func Axpy(alpha float64, x, y []float64) {
	for i, v := range x {
		y[i] += alpha * v
	}
}

// Scale multiplies v by alpha in place.
func Scale(alpha float64, v []float64) {
	for i := range v {
		v[i] *= alpha
	}
}

// Waxpby computes w = alpha*x + beta*y elementwise.
func Waxpby(alpha float64, x []float64, beta float64, y, w []float64) {
	for i := range w {
		w[i] = alpha*x[i] + beta*y[i]
	}
}

// CopyVec copies src into a fresh slice.
func CopyVec(src []float64) []float64 { return append([]float64(nil), src...) }

// Operator is a linear operator y = A x on local vectors. In a parallel
// component, Apply is responsible for any communication (halo exchange)
// needed to produce the local rows of the product.
type Operator interface {
	// Apply computes y = A x. len(x) and len(y) must equal Cols/Rows.
	Apply(x, y []float64) error
	// Rows returns the local row count.
	Rows() int
}

// Preconditioner solves z = M⁻¹ r approximately.
type Preconditioner interface {
	// Solve computes z from r; len(z) == len(r).
	Solve(r, z []float64) error
	// Name identifies the preconditioner in reports.
	Name() string
}

// IdentityPrec is the no-op preconditioner.
type IdentityPrec struct{}

// Solve implements Preconditioner by copying r into z.
func (IdentityPrec) Solve(r, z []float64) error {
	copy(z, r)
	return nil
}

// Name implements Preconditioner.
func (IdentityPrec) Name() string { return "none" }

// Result reports the outcome of an iterative solve.
type Result struct {
	Iterations int
	Residual   float64 // final relative residual ‖b−Ax‖/‖b‖
	Converged  bool
}

func (r Result) String() string {
	return fmt.Sprintf("iters=%d relres=%.3e converged=%v", r.Iterations, r.Residual, r.Converged)
}

// Options configures an iterative solve.
type Options struct {
	// Tol is the relative-residual convergence tolerance (default 1e-8).
	Tol float64
	// MaxIter bounds the iteration count (default 10·n).
	MaxIter int
	// Dot is the inner product (default DotSerial). Parallel components
	// override it with a globally reduced product.
	Dot Dot
	// Prec is the preconditioner (default identity).
	Prec Preconditioner
	// Restart is the GMRES restart length m (default 30). Ignored by
	// other solvers.
	Restart int
}

func (o Options) fill(n int) Options {
	if o.Tol == 0 {
		o.Tol = 1e-8
	}
	if o.MaxIter == 0 {
		o.MaxIter = 10 * n
		if o.MaxIter < 100 {
			o.MaxIter = 100
		}
	}
	if o.Dot == nil {
		o.Dot = DotSerial
	}
	if o.Prec == nil {
		o.Prec = IdentityPrec{}
	}
	if o.Restart == 0 {
		o.Restart = 30
	}
	return o
}
