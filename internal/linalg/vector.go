// Package linalg provides the sparse linear-algebra substrate that the CCA
// paper's motivating application depends on: the "solution of discretized
// linear systems Ax = b ... which are very large and have sparse coefficient
// matrices" (§2.2). It supplies CSR sparse matrices, Krylov solvers (CG,
// GMRES(m), BiCGStab), and preconditioners (Jacobi, SOR, ILU(0)) behind
// small interfaces so the ESI-style solver components (internal/esi) can
// expose them as interchangeable CCA components.
//
// Solvers are written against an Operator and a Dot function rather than a
// concrete matrix, so the same code runs serially and inside an SPMD
// parallel component (where Apply performs halo exchange and Dot performs a
// global reduction over internal/mpi).
package linalg

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/par"
	"repro/internal/simd"
)

// Errors reported by solvers and matrix constructors.
var (
	ErrDim         = errors.New("linalg: dimension mismatch")
	ErrNonConverge = errors.New("linalg: solver did not converge")
	ErrBreakdown   = errors.New("linalg: solver breakdown")
	ErrSingular    = errors.New("linalg: singular pivot")
)

// Dot computes an inner product. In serial use, DotSerial suffices; a
// parallel component supplies a Dot that sums local products and reduces
// across its communicator.
type Dot func(a, b []float64) float64

// VecGrain is the serial-fallback threshold for the parallel vector
// kernels: vectors shorter than this run the plain serial loops. The
// elementwise ops are memory-bound (a handful of flops per cache line), so
// the cutoff is high — below it, chunk scheduling costs more than it buys.
const VecGrain = 8192

// DotSerial is the plain serial inner product.
func DotSerial(a, b []float64) float64 {
	var s float64
	for i, v := range a {
		s += v * b[i]
	}
	return s
}

// DotPar is the parallel inner product: chunked partial sums over the
// shared worker pool, combined in fixed chunk order, so the result is
// deterministic run-to-run (it differs from DotSerial only by summation
// reassociation, O(n·eps)). Each chunk runs the simd.Dot kernel — SIMD
// within a chunk, scalar combine across chunks — so determinism holds on
// every backend: chunk boundaries depend only on (n, grain), and the
// kernel is bit-identical with and without AVX2. This is the default
// inner product installed by Options.fill.
func DotPar(a, b []float64) float64 {
	return par.ReduceFloat64(len(a), VecGrain, func(lo, hi int) float64 {
		return simd.Dot(a[lo:hi], b[lo:hi])
	})
}

// Norm2 returns the Euclidean norm of v under the given inner product.
func Norm2(dot Dot, v []float64) float64 { return math.Sqrt(dot(v, v)) }

// Norm2Par is the parallel Euclidean norm (Norm2 under DotPar).
func Norm2Par(v []float64) float64 { return math.Sqrt(DotPar(v, v)) }

// Axpy computes y += alpha*x. Large vectors update in parallel chunks;
// the operation is elementwise, so the result is bitwise identical to the
// serial loop.
func Axpy(alpha float64, x, y []float64) {
	par.For(len(x), VecGrain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			y[i] += alpha * x[i]
		}
	})
}

// Scale multiplies v by alpha in place (parallel over chunks, elementwise
// exact).
func Scale(alpha float64, v []float64) {
	par.For(len(v), VecGrain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			v[i] *= alpha
		}
	})
}

// Waxpby computes w = alpha*x + beta*y elementwise (parallel over chunks,
// elementwise exact).
func Waxpby(alpha float64, x []float64, beta float64, y, w []float64) {
	par.For(len(w), VecGrain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			w[i] = alpha*x[i] + beta*y[i]
		}
	})
}

// CopyVec copies src into a fresh slice.
func CopyVec(src []float64) []float64 { return append([]float64(nil), src...) }

// Operator is a linear operator y = A x on local vectors. In a parallel
// component, Apply is responsible for any communication (halo exchange)
// needed to produce the local rows of the product.
type Operator interface {
	// Apply computes y = A x. len(x) and len(y) must equal Cols/Rows.
	Apply(x, y []float64) error
	// Rows returns the local row count.
	Rows() int
}

// Preconditioner solves z = M⁻¹ r approximately.
type Preconditioner interface {
	// Solve computes z from r; len(z) == len(r).
	Solve(r, z []float64) error
	// Name identifies the preconditioner in reports.
	Name() string
}

// IdentityPrec is the no-op preconditioner.
type IdentityPrec struct{}

// Solve implements Preconditioner by copying r into z.
func (IdentityPrec) Solve(r, z []float64) error {
	copy(z, r)
	return nil
}

// Name implements Preconditioner.
func (IdentityPrec) Name() string { return "none" }

// Result reports the outcome of an iterative solve.
type Result struct {
	Iterations int
	Residual   float64 // final relative residual ‖b−Ax‖/‖b‖
	Converged  bool
}

func (r Result) String() string {
	return fmt.Sprintf("iters=%d relres=%.3e converged=%v", r.Iterations, r.Residual, r.Converged)
}

// Options configures an iterative solve.
type Options struct {
	// Tol is the relative-residual convergence tolerance (default 1e-8).
	Tol float64
	// MaxIter bounds the iteration count (default 10·n).
	MaxIter int
	// Dot is the inner product (default DotPar, which equals DotSerial
	// below VecGrain). SPMD components override it with a globally
	// reduced product.
	Dot Dot
	// Prec is the preconditioner (default identity).
	Prec Preconditioner
	// Restart is the GMRES restart length m (default 30). Ignored by
	// other solvers.
	Restart int
}

func (o Options) fill(n int) Options {
	if o.Tol == 0 {
		o.Tol = 1e-8
	}
	if o.MaxIter == 0 {
		o.MaxIter = 10 * n
		if o.MaxIter < 100 {
			o.MaxIter = 100
		}
	}
	if o.Dot == nil {
		o.Dot = DotPar
	}
	if o.Prec == nil {
		o.Prec = IdentityPrec{}
	}
	if o.Restart == 0 {
		o.Restart = 30
	}
	return o
}
