package linalg

import (
	"errors"
	"math"
	"testing"
)

// residual computes ‖b − A x‖₂ / ‖b‖₂.
func residual(t *testing.T, a Operator, b, x []float64) float64 {
	t.Helper()
	r := make([]float64, len(b))
	if err := a.Apply(x, r); err != nil {
		t.Fatal(err)
	}
	var rn, bn float64
	for i := range r {
		d := b[i] - r[i]
		rn += d * d
		bn += b[i] * b[i]
	}
	return math.Sqrt(rn) / math.Sqrt(bn)
}

// manufactured builds b = A·1 so the exact solution is the ones vector.
func manufactured(t *testing.T, a *CSR) []float64 {
	t.Helper()
	b := make([]float64, a.NRows)
	if err := a.Apply(Ones(a.NCols), b); err != nil {
		t.Fatal(err)
	}
	return b
}

func TestCGPoisson(t *testing.T) {
	a := Poisson2D(16, 16)
	b := manufactured(t, a)
	x := make([]float64, a.NRows)
	res, err := CG{}.Solve(a, b, x, Options{Tol: 1e-10})
	if err != nil {
		t.Fatalf("cg: %v (%v)", err, res)
	}
	if !res.Converged || res.Iterations == 0 {
		t.Fatalf("result: %v", res)
	}
	if r := residual(t, a, b, x); r > 1e-8 {
		t.Errorf("true residual %v", r)
	}
	for i, v := range x {
		if math.Abs(v-1) > 1e-6 {
			t.Fatalf("x[%d] = %v, want 1", i, v)
		}
	}
}

func TestCGWithAllPreconditioners(t *testing.T) {
	a := Poisson2D(20, 20)
	b := manufactured(t, a)
	baseline := 0
	for _, name := range []string{"none", "jacobi", "sor", "ilu0"} {
		prec, err := NewPreconditioner(name, a)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		x := make([]float64, a.NRows)
		res, err := CG{}.Solve(a, b, x, Options{Tol: 1e-10, Prec: prec})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if r := residual(t, a, b, x); r > 1e-8 {
			t.Errorf("%s: residual %v", name, r)
		}
		if name == "none" {
			baseline = res.Iterations
		} else if name == "ilu0" && res.Iterations >= baseline {
			t.Errorf("ilu0 took %d iters, unpreconditioned %d — no speedup", res.Iterations, baseline)
		}
	}
}

func TestGMRESNonsymmetric(t *testing.T) {
	a := AdvDiff2D(12, 12, 8, 4)
	b := manufactured(t, a)
	x := make([]float64, a.NRows)
	res, err := GMRES{}.Solve(a, b, x, Options{Tol: 1e-10, Restart: 20})
	if err != nil {
		t.Fatalf("gmres: %v (%v)", err, res)
	}
	if r := residual(t, a, b, x); r > 1e-8 {
		t.Errorf("true residual %v", r)
	}
}

func TestGMRESRestartStillConverges(t *testing.T) {
	a := AdvDiff2D(10, 10, 5, 5)
	b := manufactured(t, a)
	x := make([]float64, a.NRows)
	// Tiny restart forces multiple outer cycles.
	res, err := GMRES{}.Solve(a, b, x, Options{Tol: 1e-8, Restart: 5, MaxIter: 5000})
	if err != nil {
		t.Fatalf("gmres(5): %v (%v)", err, res)
	}
	if r := residual(t, a, b, x); r > 1e-6 {
		t.Errorf("true residual %v", r)
	}
}

func TestGMRESWithILU(t *testing.T) {
	a := AdvDiff2D(16, 16, 10, -6)
	b := manufactured(t, a)
	prec, err := NewILU0(a)
	if err != nil {
		t.Fatal(err)
	}
	xPlain := make([]float64, a.NRows)
	resPlain, err := GMRES{}.Solve(a, b, xPlain, Options{Tol: 1e-10})
	if err != nil {
		t.Fatalf("plain: %v", err)
	}
	xPrec := make([]float64, a.NRows)
	resPrec, err := GMRES{}.Solve(a, b, xPrec, Options{Tol: 1e-10, Prec: prec})
	if err != nil {
		t.Fatalf("ilu0: %v", err)
	}
	if resPrec.Iterations >= resPlain.Iterations {
		t.Errorf("ilu0 %d iters >= plain %d", resPrec.Iterations, resPlain.Iterations)
	}
}

func TestBiCGStabNonsymmetric(t *testing.T) {
	a := AdvDiff2D(12, 12, 6, 2)
	b := manufactured(t, a)
	x := make([]float64, a.NRows)
	res, err := BiCGStab{}.Solve(a, b, x, Options{Tol: 1e-10})
	if err != nil {
		t.Fatalf("bicgstab: %v (%v)", err, res)
	}
	if r := residual(t, a, b, x); r > 1e-7 {
		t.Errorf("true residual %v", r)
	}
}

func TestAllSolversOnSPD(t *testing.T) {
	a := RandomSPD(80, 4, 7)
	b := manufactured(t, a)
	for _, name := range []string{"cg", "gmres", "bicgstab"} {
		s, err := NewSolver(name)
		if err != nil {
			t.Fatal(err)
		}
		if s.Name() != name {
			t.Errorf("Name() = %q", s.Name())
		}
		x := make([]float64, a.NRows)
		if _, err := s.Solve(a, b, x, Options{Tol: 1e-9}); err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if r := residual(t, a, b, x); r > 1e-7 {
			t.Errorf("%s residual %v", name, r)
		}
	}
}

func TestNewSolverUnknown(t *testing.T) {
	if _, err := NewSolver("multigrid"); err == nil {
		t.Error("unknown solver accepted")
	}
}

func TestSolveZeroRHS(t *testing.T) {
	a := Laplace1D(10)
	b := make([]float64, 10)
	x := Ones(10) // nonzero guess must be driven to solution 0
	res, err := CG{}.Solve(a, b, x, Options{Tol: 1e-12})
	if err != nil {
		t.Fatalf("cg: %v", err)
	}
	if !res.Converged {
		t.Fatalf("res: %v", res)
	}
	for i, v := range x {
		if math.Abs(v) > 1e-8 {
			t.Errorf("x[%d] = %v", i, v)
		}
	}
}

func TestSolveDimMismatch(t *testing.T) {
	a := Laplace1D(5)
	for _, name := range []string{"cg", "gmres", "bicgstab"} {
		s, _ := NewSolver(name)
		if _, err := s.Solve(a, make([]float64, 4), make([]float64, 5), Options{}); !errors.Is(err, ErrDim) {
			t.Errorf("%s: err = %v", name, err)
		}
	}
}

func TestCGNonConvergenceReported(t *testing.T) {
	a := Poisson2D(16, 16)
	b := manufactured(t, a)
	x := make([]float64, a.NRows)
	_, err := CG{}.Solve(a, b, x, Options{Tol: 1e-14, MaxIter: 2})
	if !errors.Is(err, ErrNonConverge) {
		t.Errorf("err = %v, want ErrNonConverge", err)
	}
}

func TestCGWarmStart(t *testing.T) {
	a := Poisson2D(10, 10)
	b := manufactured(t, a)
	// Cold start.
	x := make([]float64, a.NRows)
	cold, err := CG{}.Solve(a, b, x, Options{Tol: 1e-10})
	if err != nil {
		t.Fatal(err)
	}
	// Warm start from the solution: should converge immediately.
	warm, err := CG{}.Solve(a, b, x, Options{Tol: 1e-8})
	if err != nil {
		t.Fatal(err)
	}
	if warm.Iterations != 0 {
		t.Errorf("warm start took %d iters (cold %d)", warm.Iterations, cold.Iterations)
	}
}

func TestJacobiPreconditioner(t *testing.T) {
	a := mustCSR(t, 2, 2, []Triplet{{0, 0, 2}, {1, 1, 4}})
	j, err := NewJacobi(a)
	if err != nil {
		t.Fatal(err)
	}
	z := make([]float64, 2)
	if err := j.Solve([]float64{2, 4}, z); err != nil {
		t.Fatal(err)
	}
	if z[0] != 1 || z[1] != 1 {
		t.Errorf("z = %v", z)
	}
	// Zero diagonal rejected.
	bad := mustCSR(t, 2, 2, []Triplet{{0, 0, 1}, {1, 0, 1}})
	if _, err := NewJacobi(bad); !errors.Is(err, ErrSingular) {
		t.Errorf("err = %v", err)
	}
}

func TestSORRejectsBadOmega(t *testing.T) {
	a := Laplace1D(4)
	for _, w := range []float64{0, -1, 2, 2.5} {
		if _, err := NewSOR(a, w, 1); err == nil {
			t.Errorf("omega %v accepted", w)
		}
	}
}

func TestILU0ExactForTriangularPattern(t *testing.T) {
	// For a matrix whose LU factors fit the sparsity pattern exactly
	// (tridiagonal), ILU(0) is a complete factorization: one preconditioned
	// "solve" gives the exact answer.
	a := Laplace1D(50)
	p, err := NewILU0(a)
	if err != nil {
		t.Fatal(err)
	}
	b := manufactured(t, a)
	z := make([]float64, 50)
	if err := p.Solve(b, z); err != nil {
		t.Fatal(err)
	}
	for i, v := range z {
		if math.Abs(v-1) > 1e-9 {
			t.Fatalf("z[%d] = %v, want 1 (ILU0 should be exact on tridiagonal)", i, v)
		}
	}
}

func TestPreconditionerNames(t *testing.T) {
	a := Laplace1D(4)
	for _, name := range []string{"none", "jacobi", "sor", "ilu0"} {
		p, err := NewPreconditioner(name, a)
		if err != nil {
			t.Fatal(err)
		}
		if p.Name() != name {
			t.Errorf("Name() = %q, want %q", p.Name(), name)
		}
	}
	if _, err := NewPreconditioner("amg", a); err == nil {
		t.Error("unknown preconditioner accepted")
	}
}

func TestVectorKernels(t *testing.T) {
	x := []float64{1, 2, 3}
	y := []float64{10, 20, 30}
	Axpy(2, x, y)
	if y[0] != 12 || y[2] != 36 {
		t.Errorf("axpy: %v", y)
	}
	w := make([]float64, 3)
	Waxpby(1, x, -1, y, w)
	if w[0] != 1-12 {
		t.Errorf("waxpby: %v", w)
	}
	Scale(0.5, w)
	if w[0] != (1-12)/2.0 {
		t.Errorf("scale: %v", w)
	}
	if d := DotSerial(x, x); d != 14 {
		t.Errorf("dot = %v", d)
	}
	if n := Norm2(DotSerial, []float64{3, 4}); n != 5 {
		t.Errorf("norm = %v", n)
	}
}
