package linalg

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestDenseSolveKnown(t *testing.T) {
	// [[2 1],[1 3]] x = [3 4] -> x = [1, 1]
	d := NewDense(2)
	d.Set(0, 0, 2)
	d.Set(0, 1, 1)
	d.Set(1, 0, 1)
	d.Set(1, 1, 3)
	x, err := d.Solve([]float64{3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-1) > 1e-12 || math.Abs(x[1]-1) > 1e-12 {
		t.Errorf("x = %v", x)
	}
}

func TestDenseSolveNeedsPivoting(t *testing.T) {
	// Zero on the leading diagonal forces a row swap.
	d := NewDense(2)
	d.Set(0, 0, 0)
	d.Set(0, 1, 1)
	d.Set(1, 0, 1)
	d.Set(1, 1, 0)
	x, err := d.Solve([]float64{5, 7})
	if err != nil {
		t.Fatal(err)
	}
	if x[0] != 7 || x[1] != 5 {
		t.Errorf("x = %v", x)
	}
}

func TestDenseSolveSingular(t *testing.T) {
	d := NewDense(2)
	d.Set(0, 0, 1)
	d.Set(0, 1, 2)
	d.Set(1, 0, 2)
	d.Set(1, 1, 4)
	if _, err := d.Solve([]float64{1, 2}); !errors.Is(err, ErrSingular) {
		t.Errorf("err = %v", err)
	}
}

func TestDenseFromCSRAndMulVec(t *testing.T) {
	m := Laplace1D(5)
	d, err := DenseFromCSR(m)
	if err != nil {
		t.Fatal(err)
	}
	x := []float64{1, 2, 3, 4, 5}
	want := make([]float64, 5)
	if err := m.Apply(x, want); err != nil {
		t.Fatal(err)
	}
	got, err := d.MulVec(x)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("mulvec[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	// Non-square rejected.
	rect, err := NewCSR(2, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DenseFromCSR(rect); !errors.Is(err, ErrDim) {
		t.Errorf("err = %v", err)
	}
}

// Property: CG's solution on random SPD systems matches dense LU to
// engineering precision.
func TestCGMatchesDenseProperty(t *testing.T) {
	f := func(seed int64) bool {
		m := RandomSPD(25, 3, seed)
		d, err := DenseFromCSR(m)
		if err != nil {
			return false
		}
		b := make([]float64, 25)
		for i := range b {
			b[i] = float64((seed>>(uint(i)%16))%11) - 5
		}
		exact, err := d.Solve(b)
		if err != nil {
			return false
		}
		x := make([]float64, 25)
		if _, err := (CG{}).Solve(m, b, x, Options{Tol: 1e-12}); err != nil {
			return false
		}
		for i := range x {
			if math.Abs(x[i]-exact[i]) > 1e-6*(1+math.Abs(exact[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: GMRES matches dense LU on random diagonally dominant
// nonsymmetric systems.
func TestGMRESMatchesDenseProperty(t *testing.T) {
	f := func(seed int64) bool {
		// Nonsymmetric diag-dominant: SPD base plus skew advection part.
		base := RandomSPD(20, 3, seed)
		var tris []Triplet
		for r := 0; r < 20; r++ {
			for k := base.RowPtr[r]; k < base.RowPtr[r+1]; k++ {
				v := base.Vals[k]
				if base.Cols[k] > r {
					v *= 1.5 // break symmetry
				}
				tris = append(tris, Triplet{r, base.Cols[k], v})
			}
			tris = append(tris, Triplet{r, r, 2}) // extra dominance
		}
		m, err := NewCSR(20, 20, tris)
		if err != nil {
			return false
		}
		d, err := DenseFromCSR(m)
		if err != nil {
			return false
		}
		b := make([]float64, 20)
		for i := range b {
			b[i] = math.Sin(float64(seed%97) + float64(i))
		}
		exact, err := d.Solve(b)
		if err != nil {
			return false
		}
		x := make([]float64, 20)
		if _, err := (GMRES{}).Solve(m, b, x, Options{Tol: 1e-12, Restart: 20}); err != nil {
			return false
		}
		for i := range x {
			if math.Abs(x[i]-exact[i]) > 1e-6*(1+math.Abs(exact[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// Property: LU solve then multiply recovers the right-hand side.
func TestDenseSolveRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		m := RandomSPD(12, 2, seed)
		d, err := DenseFromCSR(m)
		if err != nil {
			return false
		}
		b := make([]float64, 12)
		for i := range b {
			b[i] = float64(i) - 6
		}
		x, err := d.Solve(b)
		if err != nil {
			return false
		}
		back, err := d.MulVec(x)
		if err != nil {
			return false
		}
		for i := range b {
			if math.Abs(back[i]-b[i]) > 1e-8*(1+math.Abs(b[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
