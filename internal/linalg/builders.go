package linalg

import "math/rand"

// This file builds the model problems used throughout the reproduction's
// examples, tests, and benchmarks: the 2-D Poisson and advection-diffusion
// operators that stand in for CHAD's semi-implicit pressure systems (§2.2 of
// the paper: "solution of discretized linear systems ... very large ...
// sparse coefficient matrices").

// Poisson2D builds the standard 5-point finite-difference Laplacian on an
// nx×ny grid with homogeneous Dirichlet boundaries: a symmetric positive-
// definite system of size nx·ny. Row ordering is row-major in (iy, ix).
func Poisson2D(nx, ny int) *CSR {
	n := nx * ny
	entries := make([]Triplet, 0, 5*n)
	id := func(ix, iy int) int { return iy*nx + ix }
	for iy := 0; iy < ny; iy++ {
		for ix := 0; ix < nx; ix++ {
			r := id(ix, iy)
			entries = append(entries, Triplet{r, r, 4})
			if ix > 0 {
				entries = append(entries, Triplet{r, id(ix-1, iy), -1})
			}
			if ix < nx-1 {
				entries = append(entries, Triplet{r, id(ix+1, iy), -1})
			}
			if iy > 0 {
				entries = append(entries, Triplet{r, id(ix, iy-1), -1})
			}
			if iy < ny-1 {
				entries = append(entries, Triplet{r, id(ix, iy+1), -1})
			}
		}
	}
	m, err := NewCSR(n, n, entries)
	if err != nil {
		panic("linalg: Poisson2D assembly: " + err.Error()) // unreachable: indices are in range by construction
	}
	return m
}

// AdvDiff2D builds a 2-D advection-diffusion operator with upwind
// differencing of a constant velocity field (vx, vy) and unit diffusion on
// an nx×ny grid (Dirichlet boundaries). The result is nonsymmetric for
// nonzero velocity — the workload for GMRES/BiCGStab in experiment E8.
func AdvDiff2D(nx, ny int, vx, vy float64) *CSR {
	n := nx * ny
	h := 1.0 / float64(nx+1)
	entries := make([]Triplet, 0, 5*n)
	id := func(ix, iy int) int { return iy*nx + ix }
	// Upwind advection coefficients.
	axm, axp := upwind(vx)
	aym, ayp := upwind(vy)
	diag := 4 + (axm+axp)*h + (aym+ayp)*h // diffusion + advection mass
	for iy := 0; iy < ny; iy++ {
		for ix := 0; ix < nx; ix++ {
			r := id(ix, iy)
			entries = append(entries, Triplet{r, r, diag})
			if ix > 0 {
				entries = append(entries, Triplet{r, id(ix-1, iy), -1 - axm*h})
			}
			if ix < nx-1 {
				entries = append(entries, Triplet{r, id(ix+1, iy), -1 - axp*h})
			}
			if iy > 0 {
				entries = append(entries, Triplet{r, id(ix, iy-1), -1 - aym*h})
			}
			if iy < ny-1 {
				entries = append(entries, Triplet{r, id(ix, iy+1), -1 - ayp*h})
			}
		}
	}
	m, err := NewCSR(n, n, entries)
	if err != nil {
		panic("linalg: AdvDiff2D assembly: " + err.Error())
	}
	return m
}

// upwind splits velocity v into (upstream, downstream) coefficient weights.
func upwind(v float64) (minus, plus float64) {
	if v >= 0 {
		return v, 0
	}
	return 0, -v
}

// Laplace1D builds the tridiagonal 1-D Laplacian of size n (SPD).
func Laplace1D(n int) *CSR {
	entries := make([]Triplet, 0, 3*n)
	for i := 0; i < n; i++ {
		entries = append(entries, Triplet{i, i, 2})
		if i > 0 {
			entries = append(entries, Triplet{i, i - 1, -1})
		}
		if i < n-1 {
			entries = append(entries, Triplet{i, i + 1, -1})
		}
	}
	m, err := NewCSR(n, n, entries)
	if err != nil {
		panic("linalg: Laplace1D assembly: " + err.Error())
	}
	return m
}

// RandomSPD builds a random diagonally dominant symmetric matrix of size n
// with approximately nnzPerRow off-diagonal entries per row, using the
// given seed. Diagonal dominance guarantees positive-definiteness.
func RandomSPD(n, nnzPerRow int, seed int64) *CSR {
	rng := rand.New(rand.NewSource(seed))
	var entries []Triplet
	rowAbs := make([]float64, n)
	for i := 0; i < n; i++ {
		for k := 0; k < nnzPerRow; k++ {
			j := rng.Intn(n)
			if j == i {
				continue
			}
			v := rng.Float64() - 0.5
			entries = append(entries, Triplet{i, j, v}, Triplet{j, i, v})
			av := v
			if av < 0 {
				av = -av
			}
			rowAbs[i] += av
			rowAbs[j] += av
		}
	}
	for i := 0; i < n; i++ {
		entries = append(entries, Triplet{i, i, rowAbs[i] + 1})
	}
	m, err := NewCSR(n, n, entries)
	if err != nil {
		panic("linalg: RandomSPD assembly: " + err.Error())
	}
	return m
}

// Ones returns a length-n vector of ones — the conventional manufactured
// solution for solver tests (b = A·1).
func Ones(n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = 1
	}
	return v
}
