package linalg

import (
	"fmt"
	"sort"

	"repro/internal/par"
	"repro/internal/simd"
)

// CSR is a sparse matrix in compressed-sparse-row form — the storage format
// the ESI-era solver libraries (ISIS++, PETSc) exchange. Row i's nonzeros
// occupy Cols/Vals[RowPtr[i]:RowPtr[i+1]], with column indices strictly
// increasing within a row.
type CSR struct {
	NRows, NCols int
	RowPtr       []int
	Cols         []int
	Vals         []float64
}

// Triplet is one (row, col, value) matrix entry for assembly.
type Triplet struct {
	Row, Col int
	Val      float64
}

// NewCSR assembles a CSR matrix from triplets. Duplicate (row,col) entries
// are summed, matching finite-element assembly semantics.
func NewCSR(nRows, nCols int, entries []Triplet) (*CSR, error) {
	for _, e := range entries {
		if e.Row < 0 || e.Row >= nRows || e.Col < 0 || e.Col >= nCols {
			return nil, fmt.Errorf("%w: entry (%d,%d) outside %dx%d", ErrDim, e.Row, e.Col, nRows, nCols)
		}
	}
	sorted := append([]Triplet(nil), entries...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Row != sorted[j].Row {
			return sorted[i].Row < sorted[j].Row
		}
		return sorted[i].Col < sorted[j].Col
	})
	m := &CSR{NRows: nRows, NCols: nCols, RowPtr: make([]int, nRows+1)}
	for i := 0; i < len(sorted); {
		j := i
		var sum float64
		for j < len(sorted) && sorted[j].Row == sorted[i].Row && sorted[j].Col == sorted[i].Col {
			sum += sorted[j].Val
			j++
		}
		m.Cols = append(m.Cols, sorted[i].Col)
		m.Vals = append(m.Vals, sum)
		m.RowPtr[sorted[i].Row+1]++
		i = j
	}
	for r := 0; r < nRows; r++ {
		m.RowPtr[r+1] += m.RowPtr[r]
	}
	return m, nil
}

// Rows implements Operator.
func (m *CSR) Rows() int { return m.NRows }

// NNZ returns the number of stored entries.
func (m *CSR) NNZ() int { return len(m.Vals) }

// SpMVGrain is the row-count threshold below which Apply stays serial.
// SpMV rows are cheap (a few multiply-adds each for the FE stencils here),
// so the cutoff is sized to amortize one chunk dispatch over ~10k flops.
const SpMVGrain = 1024

// Apply implements Operator: y = A x. Rows are partitioned into contiguous
// chunks executed on the shared worker pool — the row decomposition of
// Figure 1's parallel discretization component, applied inside one address
// space. Each output row is written by exactly one chunk through the same
// simd.SpMVRow kernel, so the result is bitwise identical regardless of
// chunking, worker count, or kernel backend (the AVX2 gather kernel and
// its scalar fallback agree to the bit).
func (m *CSR) Apply(x, y []float64) error {
	if len(x) != m.NCols || len(y) != m.NRows {
		return fmt.Errorf("%w: apply %dx%d to x[%d], y[%d]", ErrDim, m.NRows, m.NCols, len(x), len(y))
	}
	par.For(m.NRows, SpMVGrain, func(lo, hi int) {
		for r := lo; r < hi; r++ {
			klo, khi := m.RowPtr[r], m.RowPtr[r+1]
			y[r] = simd.SpMVRow(m.Vals[klo:khi], m.Cols[klo:khi], x)
		}
	})
	return nil
}

// At returns the entry (r, c), zero if not stored.
func (m *CSR) At(r, c int) float64 {
	lo, hi := m.RowPtr[r], m.RowPtr[r+1]
	k := lo + sort.SearchInts(m.Cols[lo:hi], c)
	if k < hi && m.Cols[k] == c {
		return m.Vals[k]
	}
	return 0
}

// Diagonal extracts the main diagonal.
func (m *CSR) Diagonal() []float64 {
	n := m.NRows
	if m.NCols < n {
		n = m.NCols
	}
	d := make([]float64, n)
	for r := 0; r < n; r++ {
		d[r] = m.At(r, r)
	}
	return d
}

// Transpose returns Aᵀ as a new CSR matrix.
func (m *CSR) Transpose() *CSR {
	t := &CSR{NRows: m.NCols, NCols: m.NRows, RowPtr: make([]int, m.NCols+1)}
	for _, c := range m.Cols {
		t.RowPtr[c+1]++
	}
	for r := 0; r < t.NRows; r++ {
		t.RowPtr[r+1] += t.RowPtr[r]
	}
	t.Cols = make([]int, m.NNZ())
	t.Vals = make([]float64, m.NNZ())
	next := append([]int(nil), t.RowPtr[:t.NRows]...)
	for r := 0; r < m.NRows; r++ {
		for k := m.RowPtr[r]; k < m.RowPtr[r+1]; k++ {
			c := m.Cols[k]
			t.Cols[next[c]] = r
			t.Vals[next[c]] = m.Vals[k]
			next[c]++
		}
	}
	return t
}

// RowSlice returns the half-open row block [lo,hi) as an independent CSR
// matrix with the same column space — the building block for distributing a
// matrix across an SPMD component's ranks.
func (m *CSR) RowSlice(lo, hi int) (*CSR, error) {
	if lo < 0 || hi > m.NRows || lo > hi {
		return nil, fmt.Errorf("%w: row slice [%d,%d) of %d", ErrDim, lo, hi, m.NRows)
	}
	out := &CSR{NRows: hi - lo, NCols: m.NCols, RowPtr: make([]int, hi-lo+1)}
	base := m.RowPtr[lo]
	for r := lo; r < hi; r++ {
		out.RowPtr[r-lo+1] = m.RowPtr[r+1] - base
	}
	out.Cols = append([]int(nil), m.Cols[base:m.RowPtr[hi]]...)
	out.Vals = append([]float64(nil), m.Vals[base:m.RowPtr[hi]]...)
	return out, nil
}

// SymmetricApprox reports whether the matrix is numerically symmetric
// within tol. Used by tests and by solver components to validate CG input.
func (m *CSR) SymmetricApprox(tol float64) bool {
	if m.NRows != m.NCols {
		return false
	}
	t := m.Transpose()
	for r := 0; r < m.NRows; r++ {
		for k := m.RowPtr[r]; k < m.RowPtr[r+1]; k++ {
			d := m.Vals[k] - t.At(r, m.Cols[k])
			if d < -tol || d > tol {
				return false
			}
		}
	}
	return true
}
