package linalg

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func mustCSR(t *testing.T, nr, nc int, entries []Triplet) *CSR {
	t.Helper()
	m, err := NewCSR(nr, nc, entries)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestNewCSRBasic(t *testing.T) {
	m := mustCSR(t, 2, 3, []Triplet{{0, 0, 1}, {0, 2, 2}, {1, 1, 3}})
	if m.NNZ() != 3 {
		t.Fatalf("nnz = %d", m.NNZ())
	}
	if m.At(0, 0) != 1 || m.At(0, 2) != 2 || m.At(1, 1) != 3 || m.At(1, 0) != 0 {
		t.Errorf("entries wrong: %v %v %v %v", m.At(0, 0), m.At(0, 2), m.At(1, 1), m.At(1, 0))
	}
}

func TestNewCSRSumsDuplicates(t *testing.T) {
	m := mustCSR(t, 1, 1, []Triplet{{0, 0, 1}, {0, 0, 2.5}})
	if m.NNZ() != 1 || m.At(0, 0) != 3.5 {
		t.Errorf("nnz=%d val=%v", m.NNZ(), m.At(0, 0))
	}
}

func TestNewCSRRejectsOutOfRange(t *testing.T) {
	if _, err := NewCSR(2, 2, []Triplet{{2, 0, 1}}); !errors.Is(err, ErrDim) {
		t.Errorf("err = %v", err)
	}
	if _, err := NewCSR(2, 2, []Triplet{{0, -1, 1}}); !errors.Is(err, ErrDim) {
		t.Errorf("err = %v", err)
	}
}

func TestCSRApply(t *testing.T) {
	// [[1 2],[3 4]] * [5, 6] = [17, 39]
	m := mustCSR(t, 2, 2, []Triplet{{0, 0, 1}, {0, 1, 2}, {1, 0, 3}, {1, 1, 4}})
	y := make([]float64, 2)
	if err := m.Apply([]float64{5, 6}, y); err != nil {
		t.Fatal(err)
	}
	if y[0] != 17 || y[1] != 39 {
		t.Errorf("y = %v", y)
	}
	if err := m.Apply([]float64{1}, y); !errors.Is(err, ErrDim) {
		t.Errorf("dim err = %v", err)
	}
}

func TestCSRTranspose(t *testing.T) {
	m := mustCSR(t, 2, 3, []Triplet{{0, 1, 5}, {1, 0, 7}, {1, 2, -1}})
	tr := m.Transpose()
	if tr.NRows != 3 || tr.NCols != 2 {
		t.Fatalf("transpose shape %dx%d", tr.NRows, tr.NCols)
	}
	if tr.At(1, 0) != 5 || tr.At(0, 1) != 7 || tr.At(2, 1) != -1 {
		t.Errorf("transpose values wrong")
	}
	// (Aᵀ)ᵀ = A.
	back := tr.Transpose()
	for r := 0; r < 2; r++ {
		for c := 0; c < 3; c++ {
			if back.At(r, c) != m.At(r, c) {
				t.Errorf("double transpose mismatch at (%d,%d)", r, c)
			}
		}
	}
}

func TestCSRDiagonal(t *testing.T) {
	m := Laplace1D(4)
	d := m.Diagonal()
	for i, v := range d {
		if v != 2 {
			t.Errorf("diag[%d] = %v", i, v)
		}
	}
}

func TestCSRRowSlice(t *testing.T) {
	m := Poisson2D(4, 4)
	s, err := m.RowSlice(4, 12)
	if err != nil {
		t.Fatal(err)
	}
	if s.NRows != 8 || s.NCols != 16 {
		t.Fatalf("slice shape %dx%d", s.NRows, s.NCols)
	}
	for r := 0; r < 8; r++ {
		for c := 0; c < 16; c++ {
			if s.At(r, c) != m.At(r+4, c) {
				t.Fatalf("slice(%d,%d) = %v, want %v", r, c, s.At(r, c), m.At(r+4, c))
			}
		}
	}
	if _, err := m.RowSlice(10, 20); !errors.Is(err, ErrDim) {
		t.Errorf("bounds err = %v", err)
	}
}

func TestSymmetricApprox(t *testing.T) {
	if !Poisson2D(5, 5).SymmetricApprox(0) {
		t.Error("Poisson2D not symmetric")
	}
	if AdvDiff2D(5, 5, 10, 0).SymmetricApprox(1e-12) {
		t.Error("advection operator claimed symmetric")
	}
	if !RandomSPD(30, 3, 1).SymmetricApprox(1e-12) {
		t.Error("RandomSPD not symmetric")
	}
}

func TestPoisson2DRowSums(t *testing.T) {
	// Interior rows of the 5-point stencil sum to 0; boundary rows are
	// positive (Dirichlet).
	m := Poisson2D(5, 5)
	x := Ones(25)
	y := make([]float64, 25)
	if err := m.Apply(x, y); err != nil {
		t.Fatal(err)
	}
	// Center point (2,2) has all 4 neighbours: row sum 0.
	if y[2*5+2] != 0 {
		t.Errorf("interior row sum = %v", y[12])
	}
	// Corner (0,0) has 2 neighbours: 4-2 = 2.
	if y[0] != 2 {
		t.Errorf("corner row sum = %v", y[0])
	}
}

// Property: Apply agrees with a dense reference product for random small
// matrices.
func TestCSRApplyMatchesDenseProperty(t *testing.T) {
	f := func(seed int64) bool {
		rngM := RandomSPD(12, 3, seed)
		x := make([]float64, 12)
		for i := range x {
			x[i] = float64((seed>>uint(i%8))%7) - 3
		}
		y := make([]float64, 12)
		if rngM.Apply(x, y) != nil {
			return false
		}
		for r := 0; r < 12; r++ {
			var want float64
			for c := 0; c < 12; c++ {
				want += rngM.At(r, c) * x[c]
			}
			if math.Abs(want-y[r]) > 1e-9*(1+math.Abs(want)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: transpose preserves every entry.
func TestTransposeEntriesProperty(t *testing.T) {
	f := func(seed int64) bool {
		m := RandomSPD(10, 2, seed)
		tr := m.Transpose()
		for r := 0; r < 10; r++ {
			for c := 0; c < 10; c++ {
				if m.At(r, c) != tr.At(c, r) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
