package linalg

import "fmt"

// NewPreconditioner constructs the named preconditioner for matrix a.
// Valid names: "none", "jacobi", "sor", "ilu0".
func NewPreconditioner(name string, a *CSR) (Preconditioner, error) {
	switch name {
	case "", "none":
		return IdentityPrec{}, nil
	case "jacobi":
		return NewJacobi(a)
	case "sor":
		return NewSOR(a, 1.2, 1)
	case "ilu0":
		return NewILU0(a)
	default:
		return nil, fmt.Errorf("linalg: unknown preconditioner %q (want none, jacobi, sor, or ilu0)", name)
	}
}

// Jacobi is diagonal scaling: z = D⁻¹ r. It is the only preconditioner here
// that needs no communication in parallel, which is why the parallel hydro
// component defaults to it.
type Jacobi struct {
	invDiag []float64
}

// NewJacobi builds a Jacobi preconditioner from the matrix diagonal.
func NewJacobi(a *CSR) (*Jacobi, error) {
	d := a.Diagonal()
	inv := make([]float64, len(d))
	for i, v := range d {
		if v == 0 {
			return nil, fmt.Errorf("%w: zero diagonal at row %d", ErrSingular, i)
		}
		inv[i] = 1 / v
	}
	return &Jacobi{invDiag: inv}, nil
}

// NewJacobiFromDiag builds a Jacobi preconditioner directly from a diagonal,
// for operators that are not explicit CSR matrices.
func NewJacobiFromDiag(diag []float64) (*Jacobi, error) {
	inv := make([]float64, len(diag))
	for i, v := range diag {
		if v == 0 {
			return nil, fmt.Errorf("%w: zero diagonal at row %d", ErrSingular, i)
		}
		inv[i] = 1 / v
	}
	return &Jacobi{invDiag: inv}, nil
}

// Solve implements Preconditioner.
func (j *Jacobi) Solve(r, z []float64) error {
	if len(r) != len(j.invDiag) || len(z) != len(j.invDiag) {
		return fmt.Errorf("%w: jacobi n=%d r=%d z=%d", ErrDim, len(j.invDiag), len(r), len(z))
	}
	for i, v := range r {
		z[i] = v * j.invDiag[i]
	}
	return nil
}

// Name implements Preconditioner.
func (j *Jacobi) Name() string { return "jacobi" }

// SOR applies sweeps of successive over-relaxation (forward then backward —
// i.e. SSOR) as a preconditioner.
type SOR struct {
	a      *CSR
	omega  float64
	sweeps int
	diag   []float64
}

// NewSOR builds an SSOR preconditioner with relaxation factor omega and the
// given number of symmetric sweeps.
func NewSOR(a *CSR, omega float64, sweeps int) (*SOR, error) {
	if a.NRows != a.NCols {
		return nil, fmt.Errorf("%w: sor on %dx%d", ErrDim, a.NRows, a.NCols)
	}
	if omega <= 0 || omega >= 2 {
		return nil, fmt.Errorf("linalg: sor omega %v outside (0,2)", omega)
	}
	if sweeps <= 0 {
		sweeps = 1
	}
	d := a.Diagonal()
	for i, v := range d {
		if v == 0 {
			return nil, fmt.Errorf("%w: zero diagonal at row %d", ErrSingular, i)
		}
	}
	return &SOR{a: a, omega: omega, sweeps: sweeps, diag: d}, nil
}

// Solve implements Preconditioner: approximately solves A z = r by SSOR
// sweeps starting from z = 0.
func (s *SOR) Solve(r, z []float64) error {
	n := s.a.NRows
	if len(r) != n || len(z) != n {
		return fmt.Errorf("%w: sor n=%d r=%d z=%d", ErrDim, n, len(r), len(z))
	}
	for i := range z {
		z[i] = 0
	}
	for sweep := 0; sweep < s.sweeps; sweep++ {
		// Forward sweep.
		for i := 0; i < n; i++ {
			sum := r[i]
			for k := s.a.RowPtr[i]; k < s.a.RowPtr[i+1]; k++ {
				c := s.a.Cols[k]
				if c != i {
					sum -= s.a.Vals[k] * z[c]
				}
			}
			z[i] += s.omega * (sum/s.diag[i] - z[i])
		}
		// Backward sweep.
		for i := n - 1; i >= 0; i-- {
			sum := r[i]
			for k := s.a.RowPtr[i]; k < s.a.RowPtr[i+1]; k++ {
				c := s.a.Cols[k]
				if c != i {
					sum -= s.a.Vals[k] * z[c]
				}
			}
			z[i] += s.omega * (sum/s.diag[i] - z[i])
		}
	}
	return nil
}

// Name implements Preconditioner.
func (s *SOR) Name() string { return "sor" }

// ILU0 is an incomplete LU factorization with zero fill-in: L and U share
// A's sparsity pattern. The classic workhorse preconditioner for
// advection-diffusion systems like CHAD's.
type ILU0 struct {
	// lu stores the combined factors on A's pattern: strictly-lower
	// entries hold L (unit diagonal implied), diagonal and upper hold U.
	lu   *CSR
	diag []int // index into lu.Vals of each row's diagonal entry
}

// NewILU0 computes the ILU(0) factorization of a.
func NewILU0(a *CSR) (*ILU0, error) {
	if a.NRows != a.NCols {
		return nil, fmt.Errorf("%w: ilu0 on %dx%d", ErrDim, a.NRows, a.NCols)
	}
	n := a.NRows
	lu := &CSR{
		NRows:  n,
		NCols:  n,
		RowPtr: append([]int(nil), a.RowPtr...),
		Cols:   append([]int(nil), a.Cols...),
		Vals:   append([]float64(nil), a.Vals...),
	}
	diag := make([]int, n)
	for i := 0; i < n; i++ {
		diag[i] = -1
		for k := lu.RowPtr[i]; k < lu.RowPtr[i+1]; k++ {
			if lu.Cols[k] == i {
				diag[i] = k
				break
			}
		}
		if diag[i] < 0 {
			return nil, fmt.Errorf("%w: ilu0 missing diagonal in row %d", ErrSingular, i)
		}
	}
	// IKJ-variant incomplete elimination restricted to the pattern.
	for i := 1; i < n; i++ {
		for kk := lu.RowPtr[i]; kk < lu.RowPtr[i+1]; kk++ {
			k := lu.Cols[kk]
			if k >= i {
				break
			}
			piv := lu.Vals[diag[k]]
			if piv == 0 {
				return nil, fmt.Errorf("%w: ilu0 zero pivot at row %d", ErrSingular, k)
			}
			lik := lu.Vals[kk] / piv
			lu.Vals[kk] = lik
			// Subtract lik * U(k, j) for j > k where (i, j) is in pattern.
			for jj := diag[k] + 1; jj < lu.RowPtr[k+1]; jj++ {
				j := lu.Cols[jj]
				// Find (i, j) in row i (columns sorted).
				for mm := kk + 1; mm < lu.RowPtr[i+1]; mm++ {
					if lu.Cols[mm] == j {
						lu.Vals[mm] -= lik * lu.Vals[jj]
						break
					}
					if lu.Cols[mm] > j {
						break
					}
				}
			}
		}
		if lu.Vals[diag[i]] == 0 {
			return nil, fmt.Errorf("%w: ilu0 zero pivot at row %d", ErrSingular, i)
		}
	}
	return &ILU0{lu: lu, diag: diag}, nil
}

// Solve implements Preconditioner: z = U⁻¹ L⁻¹ r.
func (p *ILU0) Solve(r, z []float64) error {
	n := p.lu.NRows
	if len(r) != n || len(z) != n {
		return fmt.Errorf("%w: ilu0 n=%d r=%d z=%d", ErrDim, n, len(r), len(z))
	}
	// Forward solve L y = r (unit diagonal), y stored in z.
	for i := 0; i < n; i++ {
		s := r[i]
		for k := p.lu.RowPtr[i]; k < p.diag[i]; k++ {
			s -= p.lu.Vals[k] * z[p.lu.Cols[k]]
		}
		z[i] = s
	}
	// Backward solve U z = y.
	for i := n - 1; i >= 0; i-- {
		s := z[i]
		for k := p.diag[i] + 1; k < p.lu.RowPtr[i+1]; k++ {
			s -= p.lu.Vals[k] * z[p.lu.Cols[k]]
		}
		z[i] = s / p.lu.Vals[p.diag[i]]
	}
	return nil
}

// Name implements Preconditioner.
func (p *ILU0) Name() string { return "ilu0" }
