package linalg

import (
	"fmt"
	"math"
)

// Solver is an iterative method for Ax = b. Implementations are stateless;
// all per-solve state lives on the stack so one Solver value can serve many
// components concurrently.
type Solver interface {
	// Solve overwrites x with the solution of A x = b, starting from the
	// initial guess already in x.
	Solve(a Operator, b, x []float64, opts Options) (Result, error)
	// Name identifies the method ("cg", "gmres", "bicgstab").
	Name() string
}

// NewSolver returns the named solver or an error listing the valid names.
func NewSolver(name string) (Solver, error) {
	switch name {
	case "cg":
		return CG{}, nil
	case "gmres":
		return GMRES{}, nil
	case "bicgstab":
		return BiCGStab{}, nil
	default:
		return nil, fmt.Errorf("linalg: unknown solver %q (want cg, gmres, or bicgstab)", name)
	}
}

// CG is the preconditioned conjugate-gradient method for symmetric
// positive-definite systems.
type CG struct{}

// Name implements Solver.
func (CG) Name() string { return "cg" }

// Solve implements Solver.
func (CG) Solve(a Operator, b, x []float64, opts Options) (Result, error) {
	n := a.Rows()
	if len(b) != n || len(x) != n {
		return Result{}, fmt.Errorf("%w: cg n=%d b=%d x=%d", ErrDim, n, len(b), len(x))
	}
	o := opts.fill(n)

	r := make([]float64, n)
	if err := a.Apply(x, r); err != nil {
		return Result{}, err
	}
	for i := range r {
		r[i] = b[i] - r[i]
	}
	bnorm := Norm2(o.Dot, b)
	if bnorm == 0 {
		bnorm = 1
	}
	z := make([]float64, n)
	if err := o.Prec.Solve(r, z); err != nil {
		return Result{}, err
	}
	p := CopyVec(z)
	ap := make([]float64, n)
	rz := o.Dot(r, z)

	for it := 0; it < o.MaxIter; it++ {
		res := Norm2(o.Dot, r) / bnorm
		if res <= o.Tol {
			return Result{Iterations: it, Residual: res, Converged: true}, nil
		}
		if err := a.Apply(p, ap); err != nil {
			return Result{}, err
		}
		pap := o.Dot(p, ap)
		if pap == 0 || math.IsNaN(pap) {
			return Result{Iterations: it, Residual: res}, fmt.Errorf("%w: cg pᵀAp=%v at iter %d", ErrBreakdown, pap, it)
		}
		alpha := rz / pap
		Axpy(alpha, p, x)
		Axpy(-alpha, ap, r)
		if err := o.Prec.Solve(r, z); err != nil {
			return Result{}, err
		}
		rzNew := o.Dot(r, z)
		beta := rzNew / rz
		rz = rzNew
		for i := range p {
			p[i] = z[i] + beta*p[i]
		}
	}
	res := Norm2(o.Dot, r) / bnorm
	if res <= o.Tol {
		return Result{Iterations: o.MaxIter, Residual: res, Converged: true}, nil
	}
	return Result{Iterations: o.MaxIter, Residual: res}, ErrNonConverge
}

// BiCGStab is the stabilized bi-conjugate gradient method for general
// nonsymmetric systems.
type BiCGStab struct{}

// Name implements Solver.
func (BiCGStab) Name() string { return "bicgstab" }

// Solve implements Solver.
func (BiCGStab) Solve(a Operator, b, x []float64, opts Options) (Result, error) {
	n := a.Rows()
	if len(b) != n || len(x) != n {
		return Result{}, fmt.Errorf("%w: bicgstab n=%d b=%d x=%d", ErrDim, n, len(b), len(x))
	}
	o := opts.fill(n)

	r := make([]float64, n)
	if err := a.Apply(x, r); err != nil {
		return Result{}, err
	}
	for i := range r {
		r[i] = b[i] - r[i]
	}
	bnorm := Norm2(o.Dot, b)
	if bnorm == 0 {
		bnorm = 1
	}
	rhat := CopyVec(r)
	var rho, alpha, omega float64 = 1, 1, 1
	v := make([]float64, n)
	p := make([]float64, n)
	phat := make([]float64, n)
	s := make([]float64, n)
	shat := make([]float64, n)
	t := make([]float64, n)

	for it := 0; it < o.MaxIter; it++ {
		res := Norm2(o.Dot, r) / bnorm
		if res <= o.Tol {
			return Result{Iterations: it, Residual: res, Converged: true}, nil
		}
		rhoNew := o.Dot(rhat, r)
		if rhoNew == 0 {
			return Result{Iterations: it, Residual: res}, fmt.Errorf("%w: bicgstab rho=0 at iter %d", ErrBreakdown, it)
		}
		if it == 0 {
			copy(p, r)
		} else {
			beta := (rhoNew / rho) * (alpha / omega)
			for i := range p {
				p[i] = r[i] + beta*(p[i]-omega*v[i])
			}
		}
		rho = rhoNew
		if err := o.Prec.Solve(p, phat); err != nil {
			return Result{}, err
		}
		if err := a.Apply(phat, v); err != nil {
			return Result{}, err
		}
		rhv := o.Dot(rhat, v)
		if rhv == 0 {
			return Result{Iterations: it, Residual: res}, fmt.Errorf("%w: bicgstab r̂ᵀv=0 at iter %d", ErrBreakdown, it)
		}
		alpha = rho / rhv
		for i := range s {
			s[i] = r[i] - alpha*v[i]
		}
		if sres := Norm2(o.Dot, s) / bnorm; sres <= o.Tol {
			Axpy(alpha, phat, x)
			return Result{Iterations: it + 1, Residual: sres, Converged: true}, nil
		}
		if err := o.Prec.Solve(s, shat); err != nil {
			return Result{}, err
		}
		if err := a.Apply(shat, t); err != nil {
			return Result{}, err
		}
		tt := o.Dot(t, t)
		if tt == 0 {
			return Result{Iterations: it, Residual: res}, fmt.Errorf("%w: bicgstab tᵀt=0 at iter %d", ErrBreakdown, it)
		}
		omega = o.Dot(t, s) / tt
		for i := range x {
			x[i] += alpha*phat[i] + omega*shat[i]
		}
		for i := range r {
			r[i] = s[i] - omega*t[i]
		}
		if omega == 0 {
			res := Norm2(o.Dot, r) / bnorm
			return Result{Iterations: it + 1, Residual: res}, fmt.Errorf("%w: bicgstab omega=0", ErrBreakdown)
		}
	}
	res := Norm2(o.Dot, r) / bnorm
	if res <= o.Tol {
		return Result{Iterations: o.MaxIter, Residual: res, Converged: true}, nil
	}
	return Result{Iterations: o.MaxIter, Residual: res}, ErrNonConverge
}

// GMRES is the restarted generalized minimal-residual method GMRES(m) with
// right preconditioning, suitable for general nonsymmetric systems.
type GMRES struct{}

// Name implements Solver.
func (GMRES) Name() string { return "gmres" }

// Solve implements Solver.
func (GMRES) Solve(a Operator, b, x []float64, opts Options) (Result, error) {
	n := a.Rows()
	if len(b) != n || len(x) != n {
		return Result{}, fmt.Errorf("%w: gmres n=%d b=%d x=%d", ErrDim, n, len(b), len(x))
	}
	o := opts.fill(n)
	m := o.Restart
	if m > o.MaxIter {
		m = o.MaxIter
	}

	bnorm := Norm2(o.Dot, b)
	if bnorm == 0 {
		bnorm = 1
	}

	// Krylov basis and Hessenberg factors (Givens-rotated in place).
	v := make([][]float64, m+1)
	for i := range v {
		v[i] = make([]float64, n)
	}
	h := make([][]float64, m+1)
	for i := range h {
		h[i] = make([]float64, m)
	}
	cs := make([]float64, m)
	sn := make([]float64, m)
	g := make([]float64, m+1)
	w := make([]float64, n)
	ztmp := make([]float64, n)

	totalIters := 0
	for totalIters < o.MaxIter {
		// r0 = b - A x
		if err := a.Apply(x, v[0]); err != nil {
			return Result{}, err
		}
		for i := range v[0] {
			v[0][i] = b[i] - v[0][i]
		}
		beta := Norm2(o.Dot, v[0])
		res := beta / bnorm
		if res <= o.Tol {
			return Result{Iterations: totalIters, Residual: res, Converged: true}, nil
		}
		Scale(1/beta, v[0])
		for i := range g {
			g[i] = 0
		}
		g[0] = beta

		k := 0
		for ; k < m && totalIters < o.MaxIter; k++ {
			totalIters++
			// w = A M⁻¹ v_k  (right preconditioning)
			if err := o.Prec.Solve(v[k], ztmp); err != nil {
				return Result{}, err
			}
			if err := a.Apply(ztmp, w); err != nil {
				return Result{}, err
			}
			// Modified Gram-Schmidt.
			for i := 0; i <= k; i++ {
				h[i][k] = o.Dot(w, v[i])
				Axpy(-h[i][k], v[i], w)
			}
			h[k+1][k] = Norm2(o.Dot, w)
			if h[k+1][k] != 0 {
				copy(v[k+1], w)
				Scale(1/h[k+1][k], v[k+1])
			}
			// Apply previous Givens rotations to the new column.
			for i := 0; i < k; i++ {
				t := cs[i]*h[i][k] + sn[i]*h[i+1][k]
				h[i+1][k] = -sn[i]*h[i][k] + cs[i]*h[i+1][k]
				h[i][k] = t
			}
			// New rotation to annihilate h[k+1][k].
			denom := math.Hypot(h[k][k], h[k+1][k])
			if denom == 0 {
				return Result{Iterations: totalIters, Residual: res}, fmt.Errorf("%w: gmres zero Hessenberg column", ErrBreakdown)
			}
			cs[k] = h[k][k] / denom
			sn[k] = h[k+1][k] / denom
			h[k][k] = denom
			h[k+1][k] = 0
			g[k+1] = -sn[k] * g[k]
			g[k] *= cs[k]

			res = math.Abs(g[k+1]) / bnorm
			if res <= o.Tol {
				k++
				break
			}
		}

		// Solve the k×k triangular system and update x: x += M⁻¹ (V_k y).
		y := make([]float64, k)
		for i := k - 1; i >= 0; i-- {
			s := g[i]
			for j := i + 1; j < k; j++ {
				s -= h[i][j] * y[j]
			}
			if h[i][i] == 0 {
				return Result{Iterations: totalIters, Residual: res}, fmt.Errorf("%w: gmres triangular solve", ErrSingular)
			}
			y[i] = s / h[i][i]
		}
		for i := range w {
			w[i] = 0
		}
		for j := 0; j < k; j++ {
			Axpy(y[j], v[j], w)
		}
		if err := o.Prec.Solve(w, ztmp); err != nil {
			return Result{}, err
		}
		Axpy(1, ztmp, x)

		if res <= o.Tol {
			// Recompute the true residual to guard against drift.
			if err := a.Apply(x, w); err != nil {
				return Result{}, err
			}
			for i := range w {
				w[i] = b[i] - w[i]
			}
			trueRes := Norm2(o.Dot, w) / bnorm
			if trueRes <= 10*o.Tol {
				return Result{Iterations: totalIters, Residual: trueRes, Converged: true}, nil
			}
		}
	}
	// Final residual.
	if err := a.Apply(x, w); err != nil {
		return Result{}, err
	}
	for i := range w {
		w[i] = b[i] - w[i]
	}
	res := Norm2(o.Dot, w) / bnorm
	if res <= o.Tol {
		return Result{Iterations: totalIters, Residual: res, Converged: true}, nil
	}
	return Result{Iterations: totalIters, Residual: res}, ErrNonConverge
}
