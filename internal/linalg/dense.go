package linalg

import (
	"fmt"
	"math"
)

// Dense is a small dense matrix in row-major storage — used for reference
// solutions in tests, the Hessenberg systems inside GMRES variants, and as
// the exact baseline the Krylov solvers are property-tested against.
type Dense struct {
	N    int
	Data []float64 // row-major N×N
}

// NewDense allocates a zero N×N matrix.
func NewDense(n int) *Dense {
	return &Dense{N: n, Data: make([]float64, n*n)}
}

// DenseFromCSR expands a sparse matrix (must be square).
func DenseFromCSR(m *CSR) (*Dense, error) {
	if m.NRows != m.NCols {
		return nil, fmt.Errorf("%w: dense from %dx%d", ErrDim, m.NRows, m.NCols)
	}
	d := NewDense(m.NRows)
	for r := 0; r < m.NRows; r++ {
		for k := m.RowPtr[r]; k < m.RowPtr[r+1]; k++ {
			d.Data[r*m.NRows+m.Cols[k]] = m.Vals[k]
		}
	}
	return d, nil
}

// At returns element (r, c).
func (d *Dense) At(r, c int) float64 { return d.Data[r*d.N+c] }

// Set stores element (r, c).
func (d *Dense) Set(r, c int, v float64) { d.Data[r*d.N+c] = v }

// Solve solves A x = b by LU factorization with partial pivoting,
// overwriting neither input. It destroys a working copy of the matrix.
func (d *Dense) Solve(b []float64) ([]float64, error) {
	n := d.N
	if len(b) != n {
		return nil, fmt.Errorf("%w: dense solve n=%d b=%d", ErrDim, n, len(b))
	}
	a := append([]float64(nil), d.Data...)
	x := append([]float64(nil), b...)
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	for col := 0; col < n; col++ {
		// Partial pivot.
		piv, pmax := col, math.Abs(a[col*n+col])
		for r := col + 1; r < n; r++ {
			if v := math.Abs(a[r*n+col]); v > pmax {
				piv, pmax = r, v
			}
		}
		if pmax == 0 {
			return nil, fmt.Errorf("%w: dense pivot at column %d", ErrSingular, col)
		}
		if piv != col {
			for c := 0; c < n; c++ {
				a[col*n+c], a[piv*n+c] = a[piv*n+c], a[col*n+c]
			}
			x[col], x[piv] = x[piv], x[col]
		}
		// Eliminate below.
		inv := 1 / a[col*n+col]
		for r := col + 1; r < n; r++ {
			f := a[r*n+col] * inv
			if f == 0 {
				continue
			}
			a[r*n+col] = 0
			for c := col + 1; c < n; c++ {
				a[r*n+c] -= f * a[col*n+c]
			}
			x[r] -= f * x[col]
		}
	}
	// Back substitution.
	for r := n - 1; r >= 0; r-- {
		s := x[r]
		for c := r + 1; c < n; c++ {
			s -= a[r*n+c] * x[c]
		}
		x[r] = s / a[r*n+r]
	}
	return x, nil
}

// MulVec computes y = A x.
func (d *Dense) MulVec(x []float64) ([]float64, error) {
	if len(x) != d.N {
		return nil, fmt.Errorf("%w: dense mulvec n=%d x=%d", ErrDim, d.N, len(x))
	}
	y := make([]float64, d.N)
	for r := 0; r < d.N; r++ {
		var s float64
		row := d.Data[r*d.N : (r+1)*d.N]
		for c, v := range row {
			s += v * x[c]
		}
		y[r] = s
	}
	return y, nil
}
