package linalg

import (
	"math"
	"math/rand"
	"testing"
)

// These are the parallel-vs-serial equivalence properties for the kernels
// the par layer accelerates. Sizes deliberately straddle the serial
// cutoffs (VecGrain, SpMVGrain) so both the inline fallback and the chunked
// pool path are exercised, and the tolerance bounds the only permitted
// difference: summation reassociation in the reductions.

// equivSizes straddles both grain cutoffs.
var equivSizes = []int{1, 17, SpMVGrain - 1, SpMVGrain, SpMVGrain + 1,
	VecGrain - 1, VecGrain, VecGrain + 1, 3*VecGrain + 251}

func randVec(rng *rand.Rand, n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	return v
}

func TestDotParMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, n := range equivSizes {
		a, b := randVec(rng, n), randVec(rng, n)
		serial := DotSerial(a, b)
		got := DotPar(a, b)
		tol := 1e-12 * (1 + math.Abs(serial))
		if d := math.Abs(got - serial); d > tol {
			t.Errorf("n=%d: DotPar=%v DotSerial=%v diff=%v > %v", n, got, serial, d, tol)
		}
		// Determinism: repeated parallel evaluations must be bit-identical.
		for trial := 0; trial < 5; trial++ {
			if again := DotPar(a, b); again != got {
				t.Fatalf("n=%d: DotPar nondeterministic: %v vs %v", n, again, got)
			}
		}
	}
}

func TestNorm2ParMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for _, n := range equivSizes {
		v := randVec(rng, n)
		serial := Norm2(DotSerial, v)
		got := Norm2Par(v)
		tol := 1e-12 * (1 + serial)
		if d := math.Abs(got - serial); d > tol {
			t.Errorf("n=%d: Norm2Par=%v serial=%v diff=%v > %v", n, got, serial, d, tol)
		}
	}
}

func TestAxpyParallelExact(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	for _, n := range equivSizes {
		x := randVec(rng, n)
		y0 := randVec(rng, n)
		want := make([]float64, n)
		for i := range want {
			want[i] = y0[i] + 0.37*x[i]
		}
		got := CopyVec(y0)
		Axpy(0.37, x, got)
		for i := range got {
			if got[i] != want[i] { // elementwise: must be bitwise exact
				t.Fatalf("n=%d: Axpy[%d]=%v want %v", n, i, got[i], want[i])
			}
		}
	}
}

func TestCSRApplyParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	for _, n := range []int{1, 40, SpMVGrain - 1, SpMVGrain + 1, 4*SpMVGrain + 33} {
		// Random sparse matrix, ~8 nonzeros per row.
		var tr []Triplet
		for r := 0; r < n; r++ {
			for k := 0; k < 8; k++ {
				tr = append(tr, Triplet{Row: r, Col: rng.Intn(n), Val: rng.NormFloat64()})
			}
		}
		m, err := NewCSR(n, n, tr)
		if err != nil {
			t.Fatal(err)
		}
		x := randVec(rng, n)
		got := make([]float64, n)
		if err := m.Apply(x, got); err != nil {
			t.Fatal(err)
		}
		// Serial reference sweep.
		want := make([]float64, n)
		for r := 0; r < n; r++ {
			var s float64
			for k := m.RowPtr[r]; k < m.RowPtr[r+1]; k++ {
				s += m.Vals[k] * x[m.Cols[k]]
			}
			want[r] = s
		}
		for r := range want {
			tol := 1e-12 * (1 + math.Abs(want[r]))
			if d := math.Abs(got[r] - want[r]); d > tol {
				t.Fatalf("n=%d row %d: parallel %v vs serial %v", n, r, got[r], want[r])
			}
		}
	}
}

// TestSolversWithParallelDot re-solves a well-conditioned system with the
// default (parallel) dot sized above VecGrain, checking the Krylov methods
// still converge to the true solution.
func TestSolversWithParallelDot(t *testing.T) {
	grid := 96 // 9216 unknowns > VecGrain
	a := Poisson2D(grid, grid)
	want := make([]float64, a.NCols)
	for i := range want {
		want[i] = math.Sin(0.01 * float64(i))
	}
	rhs := make([]float64, a.NRows)
	if err := a.Apply(want, rhs); err != nil {
		t.Fatal(err)
	}
	for _, s := range []Solver{CG{}, GMRES{}, BiCGStab{}} {
		x := make([]float64, a.NRows)
		res, err := s.Solve(a, rhs, x, Options{Tol: 1e-10})
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		if !res.Converged {
			t.Fatalf("%s: did not converge: %v", s.Name(), res)
		}
		var maxErr float64
		for i := range x {
			maxErr = math.Max(maxErr, math.Abs(x[i]-want[i]))
		}
		if maxErr > 1e-6 {
			t.Errorf("%s: max abs error %v", s.Name(), maxErr)
		}
	}
}
