package repro

// Integration test: the paper's Figure 2 exercised end-to-end in one
// scenario — SIDL definitions deposited in a repository, components
// instantiated through the builder, ports connected with subtype checking,
// the solve executed through both a direct connection and a distributed
// proxy, the repository persisted and reloaded, and reflection/DMI used to
// drive a component without compile-time knowledge.

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/cca"
	"repro/internal/cca/framework"
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/esi"
	"repro/internal/linalg"
	"repro/internal/repo"
	"repro/internal/sidl/sreflect"
	"repro/internal/transport"
)

func TestFigure2EndToEnd(t *testing.T) {
	// 1. Assemble the application container (repository + framework +
	// builder) with the ESI standard deposited.
	app, err := core.NewApp(core.Options{WithESI: true})
	if err != nil {
		t.Fatal(err)
	}

	// 2. The builder searches the repository by port type: which deposited
	// components provide something usable as esi.Solver?
	hits := app.Repo.Search(repo.Query{ProvidesType: esi.TypeSolver})
	if len(hits) != 3 {
		t.Fatalf("solver providers = %d (%v)", len(hits), hits)
	}

	// 3. Instantiate and wire: operator (pre-built, wraps a matrix),
	// solver and preconditioner from repository factories.
	m := linalg.Poisson2D(20, 20)
	if err := app.Install("op", esi.NewOperatorComponent(m)); err != nil {
		t.Fatal(err)
	}
	if err := app.Create("solver", "esi.SolverComponent.cg"); err != nil {
		t.Fatal(err)
	}
	if err := app.Create("prec", "esi.PreconditionerComponent.ilu0"); err != nil {
		t.Fatal(err)
	}
	for _, c := range [][4]string{
		{"solver", "A", "op", "A"}, {"prec", "A", "op", "A"}, {"solver", "M", "prec", "M"},
	} {
		if _, err := app.Connect(c[0], c[1], c[2], c[3]); err != nil {
			t.Fatalf("connect %v: %v", c, err)
		}
	}

	// 4. Solve through the directly connected ports.
	b := make([]float64, m.NRows)
	if err := m.Apply(linalg.Ones(m.NCols), b); err != nil {
		t.Fatal(err)
	}
	comp, _ := app.Component("solver")
	solver := comp.(esi.EsiSolver)
	solver.SetTolerance(1e-10)
	x := make([]float64, m.NRows)
	directIters, err := solver.Solve(b, &x)
	if err != nil {
		t.Fatalf("direct solve: %v", err)
	}
	for i, v := range x {
		if math.Abs(v-1) > 1e-6 {
			t.Fatalf("x[%d] = %v", i, v)
		}
	}

	// 5. Reflection/DMI: drive the same solver with no compile-time type.
	info, ok := sreflect.Global.Lookup("esi.Solver")
	if !ok {
		t.Fatal("esi.Solver not in reflection registry")
	}
	obj, err := sreflect.NewObject(info, solver)
	if err != nil {
		t.Fatal(err)
	}
	res, err := obj.Call("converged")
	if err != nil || res[0].(bool) != true {
		t.Fatalf("DMI converged = %v, %v", res, err)
	}

	// 6. Distributed connection: export the operator over TCP, build a
	// second framework whose solver uses the remote proxy, and verify the
	// identical result.
	l, err := transport.TCP{}.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	exp := dist.NewExporter(app.Fw, l)
	defer exp.Close()
	key, err := exp.Export("op", "A")
	if err != nil {
		t.Fatal(err)
	}
	remoteFw := framework.New(framework.Options{
		Flavor:    cca.FlavorInProcess | cca.FlavorDistributed,
		TypeCheck: esi.TypeChecker(),
	})
	rp, err := dist.InstallRemoteOperator(remoteFw, "remoteA", transport.TCP{}, exp.Addr(), key, esi.TypeMatrixData)
	if err != nil {
		t.Fatal(err)
	}
	defer rp.Close()
	if err := remoteFw.Install("solver", esi.NewSolverComponent("cg")); err != nil {
		t.Fatal(err)
	}
	if _, err := remoteFw.Connect("solver", "A", "remoteA", "A"); err != nil {
		t.Fatal(err)
	}
	rcomp, _ := remoteFw.Component("solver")
	rsolver := rcomp.(esi.EsiSolver)
	rsolver.SetTolerance(1e-10)
	rx := make([]float64, m.NRows)
	remoteIters, err := rsolver.Solve(b, &rx)
	if err != nil {
		t.Fatalf("remote solve: %v", err)
	}
	// The remote solver runs unpreconditioned (no M connected), so it needs
	// MORE iterations than the local ILU0-accelerated solve — but both must
	// reach the same solution through their very different connections.
	if remoteIters <= directIters {
		t.Errorf("unpreconditioned remote (%d iters) beat ILU0 direct (%d)", remoteIters, directIters)
	}
	for i := range x {
		if math.Abs(rx[i]-x[i]) > 1e-6 {
			t.Fatalf("remote x[%d] = %v, direct %v", i, rx[i], x[i])
		}
	}

	// 7. Persist the repository and reload it into a fresh app; the SIDL
	// world and port-type searches must survive.
	var buf bytes.Buffer
	if err := app.Repo.Save(&buf); err != nil {
		t.Fatal(err)
	}
	app2, err := core.NewApp(core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := app2.Repo.Load(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	if got := app2.Repo.Search(repo.Query{ProvidesType: esi.TypeSolver}); len(got) != 3 {
		t.Errorf("reloaded solver providers = %d", len(got))
	}
	if err := app2.Repo.BindFactory("esi.SolverComponent.gmres", func() cca.Component {
		return esi.NewSolverComponent("gmres")
	}); err != nil {
		t.Fatal(err)
	}
	if err := app2.Create("s", "esi.SolverComponent.gmres"); err != nil {
		t.Fatalf("create from reloaded repo: %v", err)
	}

	// 8. The configuration API saw the whole story.
	events := app.Builder.Events()
	kinds := map[cca.EventKind]int{}
	for _, e := range events {
		kinds[e.Kind]++
	}
	if kinds[cca.EventComponentAdded] < 3 || kinds[cca.EventConnected] < 3 {
		t.Errorf("event counts = %v", kinds)
	}
}
